//! Regenerates the paper's **Table 1**: classification of *requests* at the
//! domain, hostname, script and method granularities, with per-level and
//! cumulative separation factors.

use trackersift::report::{render_headline, render_table1};

fn main() {
    let study = trackersift_bench::run_experiment_study("table1");
    print!("{}", render_table1(&study.hierarchy));
    println!();
    print!(
        "{}",
        render_headline(&trackersift::headline(&study.hierarchy))
    );
}
