//! Continuous re-crawl benchmark: throughput and drift of the scheduler
//! loop over an evolving websim web, written as a machine-readable
//! `BENCH_scheduler.json` so successive PRs accumulate a trajectory.
//!
//! One tick = mutate the ecosystem, probe verdict retention across the
//! rotations, re-crawl every site through the serving writer, commit, and
//! count the commit's per-key class changes as drift. The benchmark runs
//! the same seeded churny scenario twice — once with fingerprint-keyed
//! scripts, once URL-keyed — so the headline retention split (fingerprints
//! survive CDN rotation, URLs do not) is re-measured on every run.
//!
//! Reported: ticks/sec, observations/sec, drift events/sec, and the
//! fingerprint vs URL retention rates.
//!
//! Scale can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SCHED_SITES` — websites per corpus (default 200);
//! * `TRACKERSIFT_BENCH_SCHED_EPOCHS` — crawl epochs per run (default 20);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_scheduler.json`).

use scheduler::{Scheduler, SchedulerConfig, ScriptKeying};
use std::time::Instant;
use trackersift_bench::env_usize;
use trackersift_server::{SchedulerDriver, SchedulerStats};
use websim::MutationConfig;

const SEED: u64 = 2021;

struct RunResult {
    stats: SchedulerStats,
    observations: u64,
    seconds: f64,
}

/// Tick one seeded churny scheduler to `epochs` and time the whole loop.
fn run(keying: ScriptKeying, sites: usize, epochs: usize) -> RunResult {
    let mut scheduler = Scheduler::new(
        SchedulerConfig::new(SEED)
            .with_sites(sites)
            .with_mutation(MutationConfig::churny())
            .with_keying(keying),
    );
    let (mut writer, _reader) = scheduler.sifter_pair();
    let start = Instant::now();
    let mut observations = 0u64;
    for _ in 0..epochs {
        observations += scheduler.tick(&mut writer).observations;
    }
    RunResult {
        stats: scheduler.stats(),
        observations,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn retention(stats: &SchedulerStats) -> f64 {
    if stats.retention_probes == 0 {
        return 0.0;
    }
    stats.retention_hits as f64 / stats.retention_probes as f64
}

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SCHED_SITES", 200);
    let epochs = env_usize("TRACKERSIFT_BENCH_SCHED_EPOCHS", 20);
    let out_path = std::env::var("TRACKERSIFT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_scheduler.json".to_string());

    eprintln!(
        "bench_scheduler: {sites} sites x {epochs} epochs, seed {SEED} \
         (override with TRACKERSIFT_BENCH_SCHED_SITES / TRACKERSIFT_BENCH_SCHED_EPOCHS)"
    );

    let fingerprint = run(ScriptKeying::Fingerprint, sites, epochs);
    let url = run(ScriptKeying::Url, sites, epochs);

    let ticks_per_sec = epochs as f64 / fingerprint.seconds;
    let observations_per_sec = fingerprint.observations as f64 / fingerprint.seconds;
    let drift_per_sec = fingerprint.stats.drift_events as f64 / fingerprint.seconds;
    let fingerprint_retention = retention(&fingerprint.stats);
    let url_retention = retention(&url.stats);

    // The acceptance split the scheduler exists to demonstrate: under churn
    // that rotates >30% of tracker scripts across CDNs, fingerprint-keyed
    // verdicts survive while URL-keyed verdicts are orphaned.
    assert!(
        fingerprint.stats.retention_probes >= 20,
        "churny run must probe retention, got {:?}",
        fingerprint.stats
    );
    assert!(
        fingerprint_retention >= 0.9,
        "fingerprint retention regressed below 90%: {fingerprint_retention:.3}"
    );
    assert!(
        url_retention <= 0.1,
        "URL keying unexpectedly retained verdicts: {url_retention:.3}"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"scheduler\",\n",
            "  \"sites\": {sites},\n",
            "  \"epochs\": {epochs},\n",
            "  \"ticks_per_sec\": {ticks_per_sec:.2},\n",
            "  \"observations_per_sec\": {observations_per_sec:.2},\n",
            "  \"drift_events_per_sec\": {drift_per_sec:.2},\n",
            "  \"drift_events\": {drift_events},\n",
            "  \"rotated_cdn_scripts\": {rotated},\n",
            "  \"retention_probes\": {probes},\n",
            "  \"fingerprint_retention_rate\": {fingerprint_retention:.4},\n",
            "  \"url_retention_rate\": {url_retention:.4}\n",
            "}}\n"
        ),
        sites = sites,
        epochs = epochs,
        ticks_per_sec = ticks_per_sec,
        observations_per_sec = observations_per_sec,
        drift_per_sec = drift_per_sec,
        drift_events = fingerprint.stats.drift_events,
        rotated = fingerprint.stats.rotated_cdn_scripts,
        probes = fingerprint.stats.retention_probes,
        fingerprint_retention = fingerprint_retention,
        url_retention = url_retention,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!(
        "bench_scheduler: {ticks_per_sec:.1} ticks/s, {drift_per_sec:.0} drift events/s, \
         retention fingerprint {:.1}% vs url {:.1}%",
        fingerprint_retention * 100.0,
        url_retention * 100.0,
    );
    eprintln!("bench_scheduler: wrote {out_path}");
}
