//! Ablation: attributing requests to the innermost stack frame (the paper's
//! choice) versus the outermost frame (the root of the call chain).
//!
//! The paper keeps the whole call stack and labels ancestral scripts too;
//! the initiator used for the script/method granularities is the innermost
//! frame. Attributing to the outermost frame instead (e.g. the tag manager
//! that injected everything) collapses many distinct initiators into a few
//! root scripts and inflates mixing — this ablation quantifies that.

use trackersift::{Granularity, HierarchicalClassifier, LabeledRequest};

fn main() {
    let study = trackersift_bench::run_experiment_study("ablation_stack_propagation");

    // Innermost-frame attribution (the default).
    let innermost = &study.hierarchy;

    // Outermost-frame attribution: rewrite the initiator fields.
    let rewritten: Vec<LabeledRequest> = study
        .requests
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if let Some(outer) = r.stack.last() {
                r.initiator_script = outer.script_url.clone();
                r.initiator_method = outer.method.clone();
            }
            r
        })
        .collect();
    let outermost = HierarchicalClassifier::new(study.config.thresholds).classify(&rewritten);

    println!(
        "{:<26} {:>16} {:>16} {:>18}",
        "attribution", "scripts observed", "mixed scripts", "requests attributed(%)"
    );
    for (name, result) in [
        ("innermost frame (paper)", innermost),
        ("outermost frame", &outermost),
    ] {
        let level = result.level(Granularity::Script);
        println!(
            "{:<26} {:>16} {:>16} {:>18.1}",
            name,
            level.resource_counts.total(),
            level.resource_counts.mixed,
            result.overall_attribution()
        );
    }
}
