//! Filter-engine throughput benchmark: the hashed, allocation-free match
//! path against the frozen pre-PR string-bucket baseline (and the linear
//! scan ablation), plus the labeling memo cache cold vs warm. Writes a
//! machine-readable `BENCH_filterlist.json` so successive PRs accumulate a
//! perf trajectory.
//!
//! Scale can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SITES` — corpus size used to synthesize the request
//!   workload (default 600);
//! * `TRACKERSIFT_BENCH_ITERS` — evaluation passes over the workload per
//!   engine (default 5);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_filterlist.json`).

use std::time::Instant;
use trackersift::Labeler;
use trackersift_bench::baseline::StringBucketEngine;
use trackersift_bench::env_usize;
use websim::{CorpusGenerator, CorpusProfile};

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 600);
    let iters = env_usize("TRACKERSIFT_BENCH_ITERS", 5).max(1);
    let out_path = std::env::var("TRACKERSIFT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_filterlist.json".to_string());

    eprintln!("bench_filterlist: {sites} sites, {iters} iterations …");
    let corpus = CorpusGenerator::generate(&CorpusProfile::paper().with_sites(sites), 2021);
    let engine = websim::filter_rules::engine_for(&corpus.ecosystem);
    let baseline = StringBucketEngine::from_engine(&engine);

    // The request workload: every request the corpus' scripts plan, built
    // once up front (requests pre-compute their token-hash set; both
    // engines evaluate the same pre-built requests).
    let mut requests = Vec::new();
    for site in &corpus.websites {
        for script in &site.scripts {
            for (_, planned) in script.planned_requests() {
                if let Some(req) = filterlist::FilterRequest::new(
                    &planned.url,
                    &site.hostname,
                    planned.resource_type,
                ) {
                    requests.push(req);
                }
            }
        }
    }
    let evals = (requests.len() * iters) as f64;
    eprintln!(
        "bench_filterlist: {} requests x {iters} iters against {} rules",
        requests.len(),
        engine.rule_count()
    );

    // Hashed, allocation-free engine.
    let start = Instant::now();
    let mut hashed_tracking = 0usize;
    for _ in 0..iters {
        hashed_tracking = requests
            .iter()
            .filter(|r| engine.label(r).is_tracking())
            .count();
    }
    let hashed_secs = start.elapsed().as_secs_f64();

    // Pre-PR string-bucket baseline.
    let start = Instant::now();
    let mut baseline_tracking = 0usize;
    for _ in 0..iters {
        baseline_tracking = requests
            .iter()
            .filter(|r| baseline.label(r).is_tracking())
            .count();
    }
    let baseline_secs = start.elapsed().as_secs_f64();

    // Linear scan ablation (1 pass — it is orders of magnitude slower).
    let start = Instant::now();
    let linear_tracking = requests
        .iter()
        .filter(|r| engine.evaluate_linear(r).label().is_tracking())
        .count();
    let linear_secs = start.elapsed().as_secs_f64();

    // The old index could only lose matches relative to the linear-scan
    // ground truth (boundary-unsound tokens); the hashed index must agree
    // with it exactly.
    assert_eq!(
        hashed_tracking, linear_tracking,
        "hashed index disagrees with the linear scan"
    );
    let baseline_false_negatives = linear_tracking.saturating_sub(baseline_tracking);

    // Labeling memo: label a crawled database cold (empty cache), then
    // re-label through the warm cache.
    let db = crawler::CrawlCluster::new(crawler::ClusterConfig::sequential()).crawl(&corpus);
    let labeler = Labeler::new(&engine);
    let start = Instant::now();
    let (labeled_cold, _) = labeler.label_database(&db);
    let memo_cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (labeled_warm, _) = labeler.label_database(&db);
    let memo_warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(labeled_cold, labeled_warm, "warm relabel must be identical");
    let cache = labeler.cache_stats();

    let hashed_rate = evals / hashed_secs;
    let baseline_rate = evals / baseline_secs;
    let linear_rate = requests.len() as f64 / linear_secs;
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"filterlist\",\n",
            "  \"sites\": {sites},\n",
            "  \"iterations\": {iters},\n",
            "  \"rules\": {rules},\n",
            "  \"requests\": {requests},\n",
            "  \"hashed_evals_per_sec\": {hashed_rate:.2},\n",
            "  \"string_bucket_evals_per_sec\": {baseline_rate:.2},\n",
            "  \"linear_scan_evals_per_sec\": {linear_rate:.2},\n",
            "  \"speedup_vs_string_bucket\": {speedup:.3},\n",
            "  \"speedup_vs_linear_scan\": {linear_speedup:.3},\n",
            "  \"tracking_share\": {tracking_share:.4},\n",
            "  \"baseline_false_negatives\": {false_negatives},\n",
            "  \"memo_cold_requests_per_sec\": {memo_cold:.2},\n",
            "  \"memo_warm_requests_per_sec\": {memo_warm:.2},\n",
            "  \"memo_warm_speedup\": {memo_speedup:.3},\n",
            "  \"memo_hit_rate\": {hit_rate:.4}\n",
            "}}\n"
        ),
        sites = sites,
        iters = iters,
        rules = engine.rule_count(),
        requests = requests.len(),
        hashed_rate = hashed_rate,
        baseline_rate = baseline_rate,
        linear_rate = linear_rate,
        speedup = hashed_rate / baseline_rate,
        linear_speedup = hashed_rate / linear_rate,
        tracking_share = hashed_tracking as f64 / requests.len().max(1) as f64,
        false_negatives = baseline_false_negatives,
        memo_cold = labeled_cold.len() as f64 / memo_cold_secs,
        memo_warm = labeled_warm.len() as f64 / memo_warm_secs,
        memo_speedup = memo_cold_secs / memo_warm_secs,
        hit_rate = cache.hit_rate(),
    );

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!(
        "bench_filterlist: hashed {:.0}/s vs string-bucket {:.0}/s ({:.2}x), linear {:.0}/s; \
         baseline missed {} matches; warm memo {:.2}x",
        hashed_rate,
        baseline_rate,
        hashed_rate / baseline_rate,
        linear_rate,
        baseline_false_negatives,
        memo_cold_secs / memo_warm_secs,
    );
    eprintln!("bench_filterlist: wrote {out_path}");
}
