//! Serving benchmark: verdict throughput and incremental-commit latency of
//! the `Sifter` against the naive full-reclassify baseline, written as a
//! machine-readable `BENCH_service.json` so successive PRs accumulate a
//! perf trajectory.
//!
//! The scenario is the deployment the paper motivates: a long-lived
//! service trained on a crawl keeps answering verdicts while labeled
//! observations trickle in. Every delta batch is ingested twice —
//!
//! * **incremental** — `observe` the batch, then one `commit` (the work is
//!   proportional to the dirty slice of the hierarchy);
//! * **baseline** — re-run `HierarchicalClassifier::classify` from scratch
//!   over *all* requests seen so far (what a batch-only pipeline must do
//!   to refresh its verdicts).
//!
//! The two states are asserted equal after every batch, so the speedup is
//! measured between provably equivalent results.
//!
//! A third section measures the concurrent reader/writer split under
//! contention: 1/2/4/8 reader threads each serving pinned verdict batches
//! from `SifterReader` clones while the single `SifterWriter` keeps
//! interleaving `observe`+`commit`. Reported per thread count: aggregate
//! verdicts/sec and the worst-case reader stall (the slowest single pinned
//! batch — on a lock-free read path this stays flat as commits land;
//! interpret scaling against the `cores` field, since a single-core
//! container cannot exhibit parallel speedup).
//!
//! A fourth section measures multi-shard commit throughput: the same
//! stream partitioned by registrable-domain hash across 1/2/4 independent
//! `SifterWriter` commit loops (`ShardedWriter::into_writers` is the
//! run-each-on-its-own-thread deployment shape). Each shard's loop is
//! measured sequentially so per-shard costs are clean on a single-core
//! container, and the parallel speedup is modeled structurally as total
//! work over the slowest shard's critical path — valid because the shards
//! share no state. The modeled figure is asserted >= 2x at 4 shards.
//!
//! Scale and placement can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SITES` — number of websites (default 2000);
//! * `TRACKERSIFT_BENCH_VERDICTS` — verdicts to serve (default 2,000,000);
//! * `TRACKERSIFT_BENCH_COMMITS` — delta batches to ingest (default 20);
//! * `TRACKERSIFT_BENCH_CONTENTION_VERDICTS` — verdicts per contention
//!   configuration, split across its reader threads (default 400,000);
//! * `TRACKERSIFT_BENCH_MAX_READERS` — cap on the reader-thread ladder
//!   (default 8);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_service.json`).

use std::thread;
use std::time::{Duration, Instant};
use trackersift::{
    shard_index, ShardedWriter, Sifter, Study, StudyConfig, Verdict, VerdictRequest,
};
use trackersift_bench::env_usize;
use websim::CorpusProfile;

/// Verdicts served per pinned batch in the contention section: small enough
/// that the worst-batch figure resolves individual stalls, large enough to
/// amortise the two pin atomics.
const PIN_CHUNK: usize = 2_048;

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 2_000);
    let target_verdicts = env_usize("TRACKERSIFT_BENCH_VERDICTS", 2_000_000);
    let commits = env_usize("TRACKERSIFT_BENCH_COMMITS", 20).max(1);
    let out_path =
        std::env::var("TRACKERSIFT_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());

    eprintln!("bench_service: {sites} sites, {target_verdicts} verdicts, {commits} commits …");
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites),
        seed: 2021,
        ..StudyConfig::default()
    });
    let requests = &study.requests;

    // Train on 90% of the crawl; the last 10% replays as the live stream.
    let split = requests.len() * 9 / 10;
    let (historical, live) = requests.split_at(split);
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    let build_start = Instant::now();
    sifter.observe_all(historical);
    sifter.commit();
    let build_ms = ms(build_start.elapsed());

    // ------------------------------------------------------------------
    // verdict throughput (bulk serving over the trained state)
    // ------------------------------------------------------------------
    let queries: Vec<VerdictRequest<'_>> =
        requests.iter().map(VerdictRequest::from_labeled).collect();
    let mut buffer: Vec<Verdict> = Vec::new();
    sifter.verdict_batch_into(&queries, &mut buffer); // warm
    let passes = target_verdicts.div_ceil(queries.len()).max(1);
    let serve_start = Instant::now();
    let mut blocked = 0u64;
    for _ in 0..passes {
        sifter.verdict_batch_into(&queries, &mut buffer);
        blocked += buffer.iter().filter(|v| v.should_block()).count() as u64;
    }
    let serve_secs = serve_start.elapsed().as_secs_f64();
    let served = (passes * queries.len()) as u64;
    let verdicts_per_sec = served as f64 / serve_secs.max(1e-12);

    // ------------------------------------------------------------------
    // incremental commit vs. naive full reclassification
    // ------------------------------------------------------------------
    let chunk_size = live.len().div_ceil(commits).max(1);
    let classifier = sifter.classifier();
    let mut incremental_total = Duration::ZERO;
    let mut baseline_total = Duration::ZERO;
    let mut reclassified_resources = 0usize;
    let mut ingested = historical.len();
    let mut batches = 0usize;
    for chunk in live.chunks(chunk_size) {
        // Incremental: observe the delta, commit the dirty slice.
        let start = Instant::now();
        sifter.observe_all(chunk);
        let stats = sifter.commit();
        incremental_total += start.elapsed();
        reclassified_resources += stats.reclassified();
        ingested += chunk.len();

        // Baseline: reclassify everything seen so far from scratch.
        let start = Instant::now();
        let scratch = classifier.classify(&requests[..ingested]);
        baseline_total += start.elapsed();

        // Equivalence: the speedup must be between identical results.
        assert_eq!(
            sifter.hierarchy(),
            scratch,
            "incremental state diverged from the from-scratch baseline"
        );
        batches += 1;
    }
    let speedup = baseline_total.as_secs_f64() / incremental_total.as_secs_f64().max(1e-12);

    // ------------------------------------------------------------------
    // contention: N lock-free readers against a committing writer
    // ------------------------------------------------------------------
    let contention_verdicts = env_usize("TRACKERSIFT_BENCH_CONTENTION_VERDICTS", 400_000);
    let max_readers = env_usize("TRACKERSIFT_BENCH_MAX_READERS", 8).max(1);
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let (mut writer, reader) = sifter.into_concurrent();
    let mut contention_rows = Vec::new();
    let mut single_reader_rate = 0.0f64;
    for readers in [1usize, 2, 4, 8] {
        if readers > max_readers {
            continue;
        }
        let per_thread = contention_verdicts.div_ceil(readers);
        let mut commits_during = 0u64;
        let mut results: Vec<(u64, Duration)> = Vec::new();
        let wall_start = Instant::now();
        thread::scope(|scope| {
            let mut workers = Vec::new();
            for _ in 0..readers {
                let reader = reader.clone();
                let queries = &queries;
                workers.push(scope.spawn(move || {
                    let mut served = 0u64;
                    let mut worst = Duration::ZERO;
                    let mut verdicts: Vec<Verdict> = Vec::new();
                    let mut offset = 0usize;
                    while served < per_thread as u64 {
                        let end = (offset + PIN_CHUNK).min(queries.len());
                        let chunk = &queries[offset..end];
                        offset = if end == queries.len() { 0 } else { end };
                        let start = Instant::now();
                        reader.verdict_batch_into(chunk, &mut verdicts);
                        worst = worst.max(start.elapsed());
                        served += verdicts.len() as u64;
                    }
                    (served, worst)
                }));
            }
            // The writer keeps the dirty-set machinery busy for the whole
            // measurement: re-observe live-stream chunks and commit until
            // every reader has served its share.
            let mut live_cycle = live.chunks(chunk_size).cycle();
            loop {
                let chunk = live_cycle.next().expect("cycle never ends");
                writer.observe_all(chunk);
                writer.commit();
                commits_during += 1;
                thread::sleep(Duration::from_micros(500));
                if workers.iter().all(|w| w.is_finished()) {
                    break;
                }
            }
            for worker in workers {
                results.push(worker.join().expect("reader thread panicked"));
            }
        });
        let wall = wall_start.elapsed().as_secs_f64();
        let total_served: u64 = results.iter().map(|(served, _)| served).sum();
        let aggregate = total_served as f64 / wall.max(1e-12);
        let worst_batch = results
            .iter()
            .map(|(_, worst)| *worst)
            .max()
            .unwrap_or(Duration::ZERO);
        if readers == 1 {
            single_reader_rate = aggregate;
        }
        eprintln!(
            "bench_service: contention {readers} reader(s): {aggregate:.0} verdicts/sec \
             aggregate, worst pinned batch {:.3}ms, {commits_during} commits interleaved",
            ms(worst_batch),
        );
        contention_rows.push(format!(
            concat!(
                "    {{\"readers\": {readers}, \"verdicts_served\": {served}, ",
                "\"aggregate_verdicts_per_sec\": {rate:.2}, ",
                "\"speedup_vs_single_reader\": {scaling:.3}, ",
                "\"worst_batch_ms\": {worst:.3}, \"commits_interleaved\": {commits}}}"
            ),
            readers = readers,
            served = total_served,
            rate = aggregate,
            scaling = aggregate / single_reader_rate.max(1e-12),
            worst = ms(worst_batch),
            commits = commits_during,
        ));
    }
    let contention_json = contention_rows.join(",\n");

    // ------------------------------------------------------------------
    // multi-shard commit throughput: 1/2/4 independent commit loops
    // ------------------------------------------------------------------
    // Each configuration partitions the same stream by registrable-domain
    // hash across N writers — the deployment shape of
    // `ShardedWriter::into_writers`, where every shard's commit loop runs
    // on its own thread. On this container (`cores` above) concurrent
    // threads serialize onto the same core and per-thread wall clocks
    // would absorb each other's scheduling, so each shard's loop is
    // measured *sequentially*: the per-shard cost is clean, and because
    // the shards share no state (each domain hashes to exactly one
    // writer), parallel throughput equals total work over the slowest
    // shard's critical path. That structural speedup is asserted >= 2x at
    // 4 shards.
    let mut shard_rows = Vec::new();
    let mut single_writer_secs = 0.0f64;
    let mut modeled_speedup_at_4 = 0.0f64;
    for shards in [1usize, 2, 4] {
        // Partition the whole corpus once, up front, so only commit-loop
        // work is on the clock.
        let mut partitions: Vec<Vec<&trackersift::LabeledRequest>> = vec![Vec::new(); shards];
        for request in requests {
            partitions[shard_index(&request.domain, shards)].push(request);
        }
        let sharded = ShardedWriter::build(shards, |_| {
            Sifter::builder()
                .thresholds(study.config.thresholds)
                .build()
        });
        let writers = sharded.into_writers();
        let batches = commits.max(1);
        let mut per_shard: Vec<Duration> = Vec::new();
        for (mut writer, partition) in writers.into_iter().zip(&partitions) {
            let busy_start = Instant::now();
            let chunk = partition.len().div_ceil(batches).max(1);
            for batch in partition.chunks(chunk) {
                for request in batch {
                    writer.observe(request);
                }
                writer.commit();
            }
            per_shard.push(busy_start.elapsed());
        }
        let critical_path = per_shard
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        let total_busy: f64 = per_shard.iter().map(Duration::as_secs_f64).sum();
        if shards == 1 {
            single_writer_secs = total_busy;
        }
        let modeled_speedup = single_writer_secs / critical_path.max(1e-12);
        if shards == 4 {
            modeled_speedup_at_4 = modeled_speedup;
        }
        eprintln!(
            "bench_service: {shards} shard(s): {total_busy:.3}s total commit-loop work, \
             critical path {critical_path:.3}s, modeled parallel speedup {modeled_speedup:.2}x",
        );
        shard_rows.push(format!(
            concat!(
                "    {{\"shards\": {shards}, \"observations\": {observations}, ",
                "\"commits_per_shard\": {batches}, \"busy_ms_total\": {busy:.3}, ",
                "\"critical_path_ms\": {critical:.3}, ",
                "\"modeled_speedup_vs_single_writer\": {modeled_speedup:.3}}}"
            ),
            shards = shards,
            observations = requests.len(),
            batches = batches,
            busy = total_busy * 1e3,
            critical = critical_path * 1e3,
            modeled_speedup = modeled_speedup,
        ));
    }
    // The structural guarantee behind the modeled figure: with the work
    // split 4 ways, no single shard's commit loop may cost more than half
    // the single-writer loop.
    assert!(
        modeled_speedup_at_4 >= 2.0,
        "4-shard critical path did not halve the single-writer commit loop: \
         modeled {modeled_speedup_at_4:.2}x"
    );
    let shard_commit_json = shard_rows.join(",\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"service\",\n",
            "  \"sites\": {sites},\n",
            "  \"labeled_requests\": {requests},\n",
            "  \"build_ms\": {build:.3},\n",
            "  \"verdicts_served\": {served},\n",
            "  \"verdicts_per_sec\": {verdict_rate:.2},\n",
            "  \"blocked_share\": {blocked_share:.4},\n",
            "  \"commit_batches\": {batches},\n",
            "  \"delta_requests\": {delta},\n",
            "  \"incremental_commit_ms_total\": {incr:.3},\n",
            "  \"incremental_commit_ms_mean\": {incr_mean:.3},\n",
            "  \"full_reclassify_ms_total\": {base:.3},\n",
            "  \"full_reclassify_ms_mean\": {base_mean:.3},\n",
            "  \"reclassified_resources\": {reclassified},\n",
            "  \"commit_speedup\": {speedup:.2},\n",
            "  \"equivalence_checked\": true,\n",
            "  \"cores\": {cores},\n",
            "  \"contention\": [\n{contention}\n  ],\n",
            "  \"shard_commit_note\": \"per-shard loops measured sequentially (wall-clock ",
            "parallelism needs >= shards cores); the modeled figure is total work over the ",
            "slowest shard's critical path — valid because shards share no state — and is ",
            "asserted >= 2x at 4 shards\",\n",
            "  \"shard_commit\": [\n{shard_commit}\n  ],\n",
            "  \"shard_commit_speedup_at_4\": {modeled_speedup_4:.3}\n",
            "}}\n"
        ),
        sites = sites,
        requests = requests.len(),
        build = build_ms,
        served = served,
        verdict_rate = verdicts_per_sec,
        blocked_share = blocked as f64 / served.max(1) as f64,
        batches = batches,
        delta = live.len(),
        incr = ms(incremental_total),
        incr_mean = ms(incremental_total) / batches.max(1) as f64,
        base = ms(baseline_total),
        base_mean = ms(baseline_total) / batches.max(1) as f64,
        reclassified = reclassified_resources,
        speedup = speedup,
        cores = cores,
        contention = contention_json,
        shard_commit = shard_commit_json,
        modeled_speedup_4 = modeled_speedup_at_4,
    );

    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!(
        "bench_service: {verdicts_per_sec:.0} verdicts/sec, commit speedup {speedup:.1}x \
         (incremental {:.3}ms vs full {:.3}ms per batch, equivalence checked on every batch)",
        ms(incremental_total) / batches.max(1) as f64,
        ms(baseline_total) / batches.max(1) as f64,
    );
    println!("{json}");
    eprintln!("bench_service: wrote {out_path}");
}
