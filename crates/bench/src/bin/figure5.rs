//! Regenerates the paper's **Figure 5**: call-stack analysis of requests
//! that remain mixed at method level. For every mixed method the traces of
//! its tracking and functional requests are merged into a call graph and the
//! divergence points (nodes that only participate in tracking traces) are
//! reported — the candidates whose removal blocks the tracking behaviour
//! without touching the functional path.

fn main() {
    let study = trackersift_bench::run_experiment_study("figure5");
    let analysis = study.callstack_analysis();
    println!("Figure 5: call-stack analysis of mixed methods");
    println!(
        "{} mixed methods analysed; {} ({:.0}%) have at least one divergence point",
        analysis.mixed_methods(),
        analysis.separable_methods(),
        analysis.separable_share()
    );
    println!();
    // Print a handful of worked examples, mirroring the paper's single
    // worked example (clone.js m2 / track.js t).
    for (root, graph) in analysis.graphs.iter().take(5) {
        println!("mixed method: {}", root.label());
        println!(
            "  call graph: {} nodes, {} edges",
            graph.node_count(),
            graph.edge_count()
        );
        let shared = graph.shared_nodes();
        if let Some(node) = shared.first() {
            println!("  participates in both traces: {}", node.label());
        }
        match graph.divergence_points().first() {
            Some((node, participation)) => println!(
                "  divergence point: {} (appears in {} tracking traces, 0 functional)",
                node.label(),
                participation.tracking_traces
            ),
            None => println!("  no divergence point: tracking and functional traces are identical"),
        }
        println!();
    }
}
