//! Replication benchmark: how much cheaper a delta snapshot is than a
//! full bootstrap, and how fast a follower catches up, written as a
//! machine-readable `BENCH_replication.json`.
//!
//! Two sections:
//!
//! * **catch-up** at 1/2/4 shards — the trained state is partitioned by
//!   registrable-domain hash, each shard's table exports a full bootstrap
//!   envelope and (after one more commit of live drift) a single-epoch
//!   delta via `VerdictTable::delta_since`; a `FollowerState` per shard
//!   decodes and applies both. Reported per configuration: encoded bytes
//!   (binary and JSON) and apply latency, sequential and critical-path
//!   (shards replicate independently, so a fleet's wall-clock is the
//!   slowest shard). The headline assertion: single-epoch delta bytes are
//!   **under 10% of the full-snapshot bytes** in every configuration.
//! * **wire** — one real `VerdictServer` primary and a `ReplicaClient`
//!   doing its bootstrap sync and a drift sync over loopback HTTP, so the
//!   JSON carries at least one end-to-end number (connect + fetch +
//!   parse + apply).
//!
//! Scale can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SITES` — number of websites (default 800);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default
//!   `BENCH_replication.json`).

use std::time::{Duration, Instant};
use trackersift::{frames, FollowerState, ShardedWriter, Sifter, SifterReader, Study, StudyConfig};
use trackersift_bench::env_usize;
use trackersift_server::client::{ReplicaClient, RetryPolicy};
use trackersift_server::{ServerConfig, VerdictServer};
use websim::CorpusProfile;

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 800);
    let out_path = std::env::var("TRACKERSIFT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_replication.json".to_string());

    eprintln!("bench_replication: {sites} sites …");
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites),
        seed: 2021,
        ..StudyConfig::default()
    });
    let requests = &study.requests;
    // Train on 98%; the last 2% replays as one epoch of live drift — an
    // epoch is one re-crawl slice, small next to the accumulated history.
    let split = requests.len() * 98 / 100;
    let (historical, live) = requests.split_at(split);

    // ------------------------------------------------------------------
    // catch-up at 1/2/4 shards
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedWriter::build(shards, |_| {
            Sifter::builder()
                .thresholds(study.config.thresholds)
                .build()
        });
        sharded.observe_all(historical);
        sharded.commit();
        let readers: Vec<SifterReader> = (0..shards)
            .map(|shard| sharded.shard(shard).reader())
            .collect();

        // Full bootstrap: every shard's complete committed state.
        let mut full_bin = 0usize;
        let mut full_json = 0usize;
        let mut followers: Vec<FollowerState> = Vec::new();
        let mut bootstrap_times: Vec<Duration> = Vec::new();
        let mut encoded_fulls: Vec<Vec<u8>> = Vec::new();
        for reader in &readers {
            let pin = reader.pin();
            let full = pin.table().full_snapshot_delta();
            let bytes = frames::encode_delta_snapshot(&full);
            full_json += frames::delta_snapshot_value(&full).render().len();
            full_bin += bytes.len();
            encoded_fulls.push(bytes);
        }
        for bytes in &encoded_fulls {
            let mut follower = FollowerState::new(None, None);
            let start = Instant::now();
            let decoded = frames::decode_delta_snapshot(bytes).expect("decode full");
            follower.apply(&decoded).expect("apply full");
            let table = follower.table();
            bootstrap_times.push(start.elapsed());
            assert!(table.version() >= 1, "bootstrap produced an empty table");
            followers.push(follower);
        }
        let versions_before = sharded.versions();

        // One epoch of drift: a single commit over the live slice.
        sharded.observe_all(live);
        sharded.commit();

        let mut delta_bin = 0usize;
        let mut delta_json = 0usize;
        let mut delta_changes = 0usize;
        let mut delta_times: Vec<Duration> = Vec::new();
        for (shard, reader) in readers.iter().enumerate() {
            let pin = reader.pin();
            let delta = pin
                .table()
                .delta_since(versions_before[shard])
                .expect("single-epoch delta stays inside the ring");
            delta_changes += delta.changes.len();
            let bytes = frames::encode_delta_snapshot(&delta);
            delta_json += frames::delta_snapshot_value(&delta).render().len();
            delta_bin += bytes.len();
            let follower = &mut followers[shard];
            let start = Instant::now();
            let decoded = frames::decode_delta_snapshot(&bytes).expect("decode delta");
            follower.apply(&decoded).expect("apply delta");
            let table = follower.table();
            delta_times.push(start.elapsed());
            assert_eq!(
                table.version(),
                sharded.versions()[shard],
                "follower did not land on the primary shard's version"
            );
        }

        let ratio = delta_bin as f64 / full_bin.max(1) as f64;
        // The protocol's reason to exist: tracking one epoch of drift
        // must cost a small fraction of re-shipping the world.
        assert!(
            ratio < 0.10,
            "single-epoch delta ({delta_bin} B) is not under 10% of a full \
             bootstrap ({full_bin} B) at {shards} shard(s)"
        );
        let bootstrap_total: Duration = bootstrap_times.iter().sum();
        let bootstrap_critical = bootstrap_times.iter().max().copied().unwrap_or_default();
        let delta_total: Duration = delta_times.iter().sum();
        let delta_critical = delta_times.iter().max().copied().unwrap_or_default();
        eprintln!(
            "bench_replication: {shards} shard(s): full {full_bin} B, delta {delta_bin} B \
             ({:.1}% of full), bootstrap {:.3}ms, delta catch-up {:.3}ms (critical path)",
            ratio * 1e2,
            ms(bootstrap_critical),
            ms(delta_critical),
        );
        rows.push(format!(
            concat!(
                "    {{\"shards\": {shards}, ",
                "\"full_bytes_binary\": {full_bin}, \"full_bytes_json\": {full_json}, ",
                "\"delta_bytes_binary\": {delta_bin}, \"delta_bytes_json\": {delta_json}, ",
                "\"delta_changes\": {delta_changes}, ",
                "\"delta_to_full_ratio\": {ratio:.4}, ",
                "\"bootstrap_ms_total\": {bootstrap_total:.3}, ",
                "\"bootstrap_ms_critical_path\": {bootstrap_critical:.3}, ",
                "\"delta_catchup_ms_total\": {delta_total:.3}, ",
                "\"delta_catchup_ms_critical_path\": {delta_critical:.3}}}"
            ),
            shards = shards,
            full_bin = full_bin,
            full_json = full_json,
            delta_bin = delta_bin,
            delta_json = delta_json,
            delta_changes = delta_changes,
            ratio = ratio,
            bootstrap_total = ms(bootstrap_total),
            bootstrap_critical = ms(bootstrap_critical),
            delta_total = ms(delta_total),
            delta_critical = ms(delta_critical),
        ));
    }
    let rows_json = rows.join(",\n");

    // ------------------------------------------------------------------
    // wire: end-to-end bootstrap + drift sync over loopback HTTP
    // ------------------------------------------------------------------
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(historical);
    sifter.commit();
    let (writer, _reader) = sifter.into_concurrent();
    let server = VerdictServer::start(
        writer,
        ServerConfig {
            workers: 1,
            ..ServerConfig::ephemeral()
        },
    )
    .expect("primary server");
    let mut replica = ReplicaClient::new(server.local_addr(), RetryPolicy::default(), None, None);
    let start = Instant::now();
    let bootstrap = replica.sync().expect("bootstrap sync");
    let wire_bootstrap = start.elapsed();
    assert!(bootstrap.full, "first sync must ship the full state");
    // Drive one epoch of drift the way a production primary receives it:
    // over HTTP, through POST /v1/observations and /v1/commit.
    {
        use trackersift_server::client::Client;
        let mut client = Client::connect(server.local_addr());
        let observations: Vec<String> = live
            .iter()
            .take(500)
            .map(|request| {
                format!(
                    r#"{{"domain":{:?},"hostname":{:?},"script":{:?},"method":{:?},"tracking":{}}}"#,
                    request.domain,
                    request.hostname,
                    request.initiator_script,
                    request.initiator_method,
                    request.is_tracking()
                )
            })
            .collect();
        let body = format!(r#"{{"observations":[{}]}}"#, observations.join(","));
        let (status, _) = client.request("POST", "/v1/observations", Some(&body));
        assert_eq!(status, 200);
        let (status, _) = client.request("POST", "/v1/commit", None);
        assert_eq!(status, 200);
    }
    let start = Instant::now();
    let drift = replica.sync().expect("drift sync");
    let wire_delta = start.elapsed();
    assert!(!drift.full, "drift sync must travel as a delta");
    server.shutdown();
    eprintln!(
        "bench_replication: wire bootstrap {:.3}ms, wire delta sync {:.3}ms ({} changes)",
        ms(wire_bootstrap),
        ms(wire_delta),
        drift.changes,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"replication\",\n",
            "  \"sites\": {sites},\n",
            "  \"labeled_requests\": {requests},\n",
            "  \"drift_requests\": {drift_requests},\n",
            "  \"delta_under_10_percent_of_full\": true,\n",
            "  \"catch_up\": [\n{rows}\n  ],\n",
            "  \"wire\": {{\"bootstrap_ms\": {wire_bootstrap:.3}, ",
            "\"delta_sync_ms\": {wire_delta:.3}, \"delta_changes\": {wire_changes}}}\n",
            "}}\n"
        ),
        sites = sites,
        requests = requests.len(),
        drift_requests = live.len(),
        rows = rows_json,
        wire_bootstrap = ms(wire_bootstrap),
        wire_delta = ms(wire_delta),
        wire_changes = drift.changes,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!("bench_replication: wrote {out_path}");
}
