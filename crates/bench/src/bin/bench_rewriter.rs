//! URL-rewriter throughput benchmark: the token-hash prescreen on clean
//! URLs (the overwhelmingly common case — no allocation, `None`), the
//! strip path on identifier-laden URLs, the redirect-unwrap path, and a
//! realistic corpus workload. Writes a machine-readable
//! `BENCH_rewriter.json` so successive PRs accumulate a perf trajectory.
//!
//! The non-matching rate is the one that gates deployment: every request a
//! proxy serves pays the prescreen, and only the small rewritten fraction
//! pays an allocation. The run asserts the prescreen clears 1M URLs/s.
//!
//! Scale can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_URLS` — synthetic URLs per workload (default 100,000);
//! * `TRACKERSIFT_BENCH_ITERS` — passes over each workload (default 5);
//! * `TRACKERSIFT_BENCH_SITES` — corpus size for the realistic workload
//!   (default 300);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_rewriter.json`).

use rewriter::{RewriterBuilder, UrlRewriter};
use std::time::Instant;
use trackersift_bench::env_usize;
use websim::{CorpusGenerator, CorpusProfile};

/// Time `iters` passes of `rewrite` over `urls`; returns (urls/sec, number
/// rewritten in one pass).
fn time_pass(rewriter: &UrlRewriter, urls: &[String], iters: usize) -> (f64, usize) {
    let mut rewritten = 0usize;
    let start = Instant::now();
    for _ in 0..iters {
        rewritten = urls
            .iter()
            .filter(|url| rewriter.rewrite(url).is_some())
            .count();
    }
    let rate = (urls.len() * iters) as f64 / start.elapsed().as_secs_f64();
    (rate, rewritten)
}

fn main() {
    let count = env_usize("TRACKERSIFT_BENCH_URLS", 100_000).max(1);
    let iters = env_usize("TRACKERSIFT_BENCH_ITERS", 5).max(1);
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 300);
    let out_path = std::env::var("TRACKERSIFT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_rewriter.json".to_string());

    eprintln!("bench_rewriter: {count} URLs x {iters} iters per workload …");
    let rewriter = RewriterBuilder::new().default_rules().build();

    // Clean URLs: realistic shapes, none of them matching a rule. The
    // prescreen must reject these without allocating.
    let clean: Vec<String> = (0..count)
        .map(|i| {
            format!(
                "https://cdn{}.example{}.com/assets/app-{i}.js?v={}&page={}&region=eu",
                i % 7,
                i % 23,
                i % 100,
                i % 13,
            )
        })
        .collect();
    let (clean_rate, clean_hits) = time_pass(&rewriter, &clean, iters);
    assert_eq!(clean_hits, 0, "clean workload must not rewrite");
    assert!(
        clean_rate >= 1_000_000.0,
        "non-matching prescreen below 1M URLs/s: {clean_rate:.0}"
    );

    // Identifier-laden URLs: every one strips at least one parameter.
    let tracked: Vec<String> = (0..count)
        .map(|i| {
            format!(
                "https://shop{}.example.com/p?sku={i}&utm_source=mail{}&gclid=CjwK{i}&q=x",
                i % 11,
                i % 5,
            )
        })
        .collect();
    let (strip_rate, strip_hits) = time_pass(&rewriter, &tracked, iters);
    assert_eq!(strip_hits, tracked.len(), "tracked workload must rewrite");

    // Redirect wrappers: unwrap + strip through the fixpoint loop.
    let wrapped: Vec<String> = (0..count)
        .map(|i| {
            format!(
                "https://out.example/r?url=https%3A%2F%2Fdest{}.example%2Fp%3Fid%3D{i}%26fbclid%3DIwAR{i}",
                i % 9,
            )
        })
        .collect();
    let (unwrap_rate, unwrap_hits) = time_pass(&rewriter, &wrapped, iters);
    assert_eq!(unwrap_hits, wrapped.len(), "wrapped workload must rewrite");

    // Realistic mix: every URL the synthetic corpus' scripts plan, where
    // only the decorated tracking endpoints match.
    let corpus = CorpusGenerator::generate(&CorpusProfile::paper().with_sites(sites), 2021);
    let mut planned = Vec::new();
    for site in &corpus.websites {
        for script in &site.scripts {
            for (_, request) in script.planned_requests() {
                planned.push(request.url.clone());
            }
        }
    }
    let (corpus_rate, corpus_hits) = time_pass(&rewriter, &planned, iters);
    let corpus_share = corpus_hits as f64 / planned.len().max(1) as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"rewriter\",\n",
            "  \"urls\": {count},\n",
            "  \"iterations\": {iters},\n",
            "  \"non_matching_urls_per_sec\": {clean_rate:.2},\n",
            "  \"strip_urls_per_sec\": {strip_rate:.2},\n",
            "  \"unwrap_urls_per_sec\": {unwrap_rate:.2},\n",
            "  \"corpus_sites\": {sites},\n",
            "  \"corpus_urls\": {corpus_urls},\n",
            "  \"corpus_urls_per_sec\": {corpus_rate:.2},\n",
            "  \"corpus_rewritten_share\": {corpus_share:.4}\n",
            "}}\n"
        ),
        count = count,
        iters = iters,
        clean_rate = clean_rate,
        strip_rate = strip_rate,
        unwrap_rate = unwrap_rate,
        sites = sites,
        corpus_urls = planned.len(),
        corpus_rate = corpus_rate,
        corpus_share = corpus_share,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!(
        "bench_rewriter: clean {:.2}M/s, strip {:.2}M/s, unwrap {:.2}M/s, corpus {:.2}M/s \
         ({:.1}% rewritten)",
        clean_rate / 1e6,
        strip_rate / 1e6,
        unwrap_rate / 1e6,
        corpus_rate / 1e6,
        corpus_share * 100.0,
    );
    eprintln!("bench_rewriter: wrote {out_path}");
}
