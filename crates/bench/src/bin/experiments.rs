//! Runs every experiment (Tables 1–3, Figures 3–5 and the headline summary)
//! from a single shared study and prints the paper-vs-measured comparison
//! that `EXPERIMENTS.md` records. This is the one-shot reproduction driver.

use trackersift::report::{render_headline, render_sensitivity_csv, render_table1, render_table2};
use trackersift::{Granularity, RatioHistogram};

fn main() {
    let study = trackersift_bench::run_experiment_study("experiments");

    println!("================================================================");
    println!(" TrackerSift reproduction — full experiment run");
    println!(
        " sites: {}   seed: {}   script-initiated requests: {}",
        study.corpus.websites.len(),
        study.config.seed,
        study.requests.len()
    );
    println!("================================================================\n");

    print!("{}", render_table1(&study.hierarchy));
    println!();
    print!("{}", render_table2(&study.hierarchy));
    println!();
    print!(
        "{}",
        render_headline(&trackersift::headline(&study.hierarchy))
    );
    println!();

    println!("Figure 3 band masses (functional / mixed / tracking):");
    for granularity in Granularity::ALL {
        let histogram = RatioHistogram::paper_bins(study.hierarchy.level(granularity));
        println!(
            "  {:<10} {:>8} / {:>8} / {:>8}",
            granularity.name(),
            histogram.functional_mass(2.0),
            histogram.mixed_mass(2.0),
            histogram.tracking_mass(2.0)
        );
    }
    println!();

    println!("Figure 4 sweep:");
    print!("{}", render_sensitivity_csv(&study.sensitivity_sweep()));
    println!();

    let analysis = study.callstack_analysis();
    println!(
        "Figure 5: {} mixed methods, {:.0}% separable by call-stack divergence",
        analysis.mixed_methods(),
        analysis.separable_share()
    );
    println!();

    let breakage = study.breakage_study(10);
    let (major, minor, none) = breakage.grade_counts();
    println!(
        "Table 3: {} sampled sites with mixed scripts -> {major} major, {minor} minor, {none} none",
        breakage.rows.len()
    );
    println!();

    let surrogates = study.surrogates();
    let guarded: usize = surrogates.iter().map(|s| s.guarded()).sum();
    let stubbed: usize = surrogates.iter().map(|s| s.stubbed()).sum();
    println!(
        "Surrogates: {} mixed scripts shimmed ({} methods stubbed, {} guarded)",
        surrogates.len(),
        stubbed,
        guarded
    );
}
