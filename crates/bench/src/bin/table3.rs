//! Regenerates the paper's **Table 3**: manual breakage analysis of blocking
//! mixed scripts on a sample of 10 websites, graded major / minor / none.

fn main() {
    let study = trackersift_bench::run_experiment_study("table3");
    let breakage = study.breakage_study(10);
    println!(
        "Table 3: Breakage caused by blocking mixed scripts on {} websites",
        breakage.rows.len()
    );
    println!(
        "{:<28} {:<34} {:<8} Broken features",
        "Website", "Mixed script(s) blocked", "Breakage"
    );
    for row in &breakage.rows {
        println!(
            "{:<28} {:<34} {:<8} {}",
            row.website,
            row.blocked_scripts.join(", "),
            row.breakage.to_string(),
            if row.broken_features.is_empty() {
                "-".to_string()
            } else {
                row.broken_features.join(", ")
            }
        );
    }
    let (major, minor, none) = breakage.grade_counts();
    println!();
    println!(
        "Summary: {major} major, {minor} minor, {none} none ({:.0}% of sampled sites show breakage)",
        breakage.any_breakage_share()
    );
}
