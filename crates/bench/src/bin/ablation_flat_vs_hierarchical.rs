//! Ablation: flat single-granularity classification vs TrackerSift's
//! progressive hierarchy.
//!
//! A natural question is whether the hierarchy matters at all — one could
//! classify every request directly at, say, the method level. The ablation
//! shows what the hierarchy buys: the flat method-level classifier must
//! decide for *every* script on the web (hundreds of thousands of
//! resources), whereas the hierarchy only descends into the mixed residue,
//! and the flat classifier's separation is not meaningfully better.

use trackersift::Granularity;

fn main() {
    let study = trackersift_bench::run_experiment_study("ablation_flat_vs_hierarchical");
    println!(
        "{:<28} {:>12} {:>14} {:>16}",
        "classifier", "resources", "separation(%)", "requests attributed(%)"
    );
    for granularity in Granularity::ALL {
        let flat = study.flat_classification(granularity);
        println!(
            "{:<28} {:>12} {:>14.1} {:>16.1}",
            format!("flat {}", granularity.name().to_lowercase()),
            flat.resource_counts.total(),
            flat.resource_separation_factor(),
            flat.request_separation_factor()
        );
    }
    let hierarchy = &study.hierarchy;
    let resources: u64 = hierarchy
        .levels
        .iter()
        .map(|l| l.resource_counts.total())
        .sum();
    println!(
        "{:<28} {:>12} {:>14} {:>16.1}",
        "hierarchical (paper)",
        resources,
        "-",
        hierarchy.overall_attribution()
    );
    println!();
    println!(
        "The hierarchy attributes {:.1}% of requests while only ever classifying the mixed residue at each finer level.",
        hierarchy.overall_attribution()
    );
}
