//! Pipeline throughput benchmark: runs the staged study and writes a
//! machine-readable `BENCH_pipeline.json` next to the working directory so
//! successive PRs accumulate a perf trajectory.
//!
//! Scale and placement can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SITES` — number of websites (default 2000);
//! * `TRACKERSIFT_BENCH_WORKERS` — worker threads (default: machine);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_pipeline.json`).

use std::time::Duration;
use trackersift::{Study, StudyConfig};
use trackersift_bench::env_usize;
use websim::CorpusProfile;

fn ms(duration: Option<Duration>) -> f64 {
    duration.unwrap_or_default().as_secs_f64() * 1e3
}

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 2_000);
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = env_usize("TRACKERSIFT_BENCH_WORKERS", default_workers);
    let out_path = std::env::var("TRACKERSIFT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_pipeline.json".to_string());

    let config = StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites),
        seed: 2021,
        ..StudyConfig::default()
    }
    .with_threads(workers);

    eprintln!("bench_pipeline: {sites} sites, {workers} workers …");
    let study = Study::run(config);
    let timings = &study.timings;

    // The paper-relevant hot path is crawl + label + classify; corpus
    // generation stands in for the crawl list and is excluded from the rate.
    let pipeline_secs = ["crawl", "label", "classify"]
        .iter()
        .filter_map(|name| timings.duration(name))
        .map(|d| d.as_secs_f64())
        .sum::<f64>();
    let sites_per_sec = if pipeline_secs > 0.0 {
        sites as f64 / pipeline_secs
    } else {
        0.0
    };
    let requests_per_sec = if pipeline_secs > 0.0 {
        study.requests.len() as f64 / pipeline_secs
    } else {
        0.0
    };

    // Stage-local labeling throughput: how many sites (and labeled
    // requests) the label stage alone chews through per second.
    let label_sites_per_sec = timings.rate("label", sites as u64).unwrap_or(0.0);
    let label_requests_per_sec = timings
        .rate("label", study.requests.len() as u64)
        .unwrap_or(0.0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"pipeline\",\n",
            "  \"sites\": {sites},\n",
            "  \"workers\": {workers},\n",
            "  \"labeled_requests\": {requests},\n",
            "  \"stage_ms\": {{\n",
            "    \"generate\": {generate:.3},\n",
            "    \"crawl\": {crawl:.3},\n",
            "    \"label\": {label:.3},\n",
            "    \"classify\": {classify:.3}\n",
            "  }},\n",
            "  \"pipeline_ms\": {pipeline:.3},\n",
            "  \"sites_per_sec\": {site_rate:.2},\n",
            "  \"requests_per_sec\": {request_rate:.2},\n",
            "  \"label_sites_per_sec\": {label_site_rate:.2},\n",
            "  \"label_requests_per_sec\": {label_request_rate:.2},\n",
            "  \"label_cache_hit_rate\": {cache_hit_rate:.4},\n",
            "  \"overall_attribution_pct\": {attribution:.3}\n",
            "}}\n"
        ),
        sites = sites,
        workers = workers,
        requests = study.requests.len(),
        generate = ms(timings.duration("generate")),
        crawl = ms(timings.duration("crawl")),
        label = ms(timings.duration("label")),
        classify = ms(timings.duration("classify")),
        pipeline = pipeline_secs * 1e3,
        site_rate = sites_per_sec,
        request_rate = requests_per_sec,
        label_site_rate = label_sites_per_sec,
        label_request_rate = label_requests_per_sec,
        cache_hit_rate = study.label_cache_stats.hit_rate(),
        attribution = study.hierarchy.overall_attribution(),
    );

    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("bench_pipeline: stage timings — {}", timings.summary());
    println!("{json}");
    eprintln!("bench_pipeline: wrote {out_path}");
}
