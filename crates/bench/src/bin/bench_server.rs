//! Wire-serving benchmark: requests/sec and latency percentiles of the
//! HTTP/1.1 verdict server, written as a machine-readable
//! `BENCH_server.json` so successive PRs accumulate a perf trajectory.
//!
//! The scenario: a trained sifter behind `VerdictServer`, hammered over
//! loopback by keep-alive clients in four modes:
//!
//! * `single` — JSON `POST /v1/decisions`, one decision per round trip;
//! * `batch` — JSON `POST /v1/decisions:batch`, many decisions per request;
//! * `rewrite` — JSON singles carrying full URL context against a
//!   rewriter-armed table, so a slice of the responses are per-request
//!   `rewrite` bodies encoded at serve time (the one decision shape that
//!   cannot be preformatted at commit);
//! * `binary` — the length-prefixed binary protocol with id-form keys
//!   (after the `GET /v1/keys` handshake), pipelined: each client keeps a
//!   window of requests in flight on one connection, which is what the
//!   fixed-width frames are for;
//! * `connections` — the JSON single-decision load swept across 2, 64 and
//!   512 concurrent keep-alive connections against the same fixed worker
//!   pool, sizing the readiness-polled scheduler;
//! * `overload` — a second server with a deliberately tiny connection
//!   budget, driven at 2× that budget: sheds (`503` + `Retry-After` at
//!   accept) are counted and retried, measuring the shed rate and the
//!   latency tail the *admitted* requests keep under admission control.
//!
//! Reported per mode: requests/sec, decisions/sec, and p50/p99 latency —
//! the numbers that size a deployment (how many proxy workers per verdict
//! server, and what tail the proxy inherits).
//!
//! Scale can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SITES` — corpus size behind the server (default 1000);
//! * `TRACKERSIFT_BENCH_HTTP_REQUESTS` — single-decision requests (default 20,000);
//! * `TRACKERSIFT_BENCH_HTTP_BATCHES` — batch requests (default 400);
//! * `TRACKERSIFT_BENCH_HTTP_BATCH_SIZE` — decisions per batch (default 128);
//! * `TRACKERSIFT_BENCH_HTTP_CLIENTS` — concurrent client connections (default 2);
//! * `TRACKERSIFT_BENCH_HTTP_WORKERS` — server workers (default 2);
//! * `TRACKERSIFT_BENCH_HTTP_PIPELINE` — binary in-flight window (default 64);
//! * `TRACKERSIFT_BENCH_HTTP_SWEEP_REQUESTS` — requests per connection-sweep
//!   point (default 20,000);
//! * `TRACKERSIFT_BENCH_HTTP_OVERLOAD_BUDGET` — connection budget of the
//!   overload server; the load runs at twice this many clients (default 4);
//! * `TRACKERSIFT_BENCH_HTTP_OVERLOAD_REQUESTS` — admitted requests to
//!   complete under overload (default 4,000);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_server.json`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};
use trackersift::{Decision, RewriterBuilder, Sifter, Study, StudyConfig};
use trackersift_bench::env_usize;
use trackersift_server::client::Client;
use trackersift_server::wire::{self, BinaryKeys, BinaryRecord, DecisionMessage};
use trackersift_server::{ServerConfig, VerdictServer};
use websim::CorpusProfile;

/// Run `total` requests across `clients` keep-alive connections; returns
/// (elapsed, sorted per-request latencies).
fn drive(
    addr: SocketAddr,
    clients: usize,
    total: usize,
    target: &str,
    bodies: &[String],
) -> (Duration, Vec<f64>) {
    let per_client = total.div_ceil(clients);
    let start = Instant::now();
    let mut latencies: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut samples = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let body = &bodies[(index + i * clients) % bodies.len()];
                        let sent = Instant::now();
                        let (status, _) = client.request("POST", target, Some(body));
                        samples.push(sent.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(status, 200, "non-200 response from {target}");
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (elapsed, latencies)
}

/// One pre-rendered HTTP request carrying a binary decision frame.
fn wrap_binary(target: &str, frame: &[u8]) -> Vec<u8> {
    let head = format!(
        "POST {target} HTTP/1.1\r\nHost: verdicts\r\nContent-Type: {}\r\nContent-Length: {}\r\n\r\n",
        wire::BINARY_CONTENT_TYPE,
        frame.len()
    );
    let mut request = head.into_bytes();
    request.extend_from_slice(frame);
    request
}

/// Consume exactly one HTTP response from `stream`, carrying partial reads
/// over in `buffer`; panics on any non-200 status.
fn eat_response(stream: &mut TcpStream, buffer: &mut Vec<u8>) {
    let mut chunk = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            break end;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "server closed mid-response");
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buffer[..head_end]).expect("utf-8 head");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 response: {head}");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric content-length"))
        })
        .expect("content-length header");
    let total = head_end + 4 + content_length;
    while buffer.len() < total {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "server closed mid-body");
        buffer.extend_from_slice(&chunk[..n]);
    }
    buffer.drain(..total);
}

/// Run `total` pre-rendered requests across `clients` connections keeping
/// up to `window` requests in flight per connection (HTTP/1.1 pipelining —
/// the server's parser drains pipelined requests in order). Returns
/// (elapsed, sorted per-flight latencies in ms).
fn drive_pipelined(
    addr: SocketAddr,
    clients: usize,
    total: usize,
    window: usize,
    requests: &[Vec<u8>],
) -> (Duration, Vec<f64>) {
    let per_client = total.div_ceil(clients);
    let start = Instant::now();
    let mut latencies: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .expect("read timeout");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut samples = Vec::with_capacity(per_client.div_ceil(window));
                    let mut response_buffer = Vec::new();
                    let mut flight_buffer = Vec::new();
                    let mut served = 0usize;
                    while served < per_client {
                        let flight = window.min(per_client - served);
                        flight_buffer.clear();
                        for i in 0..flight {
                            let at = (index + (served + i) * clients) % requests.len();
                            flight_buffer.extend_from_slice(&requests[at]);
                        }
                        let sent = Instant::now();
                        stream.write_all(&flight_buffer).expect("write flight");
                        for _ in 0..flight {
                            eat_response(&mut stream, &mut response_buffer);
                        }
                        samples.push(sent.elapsed().as_secs_f64() * 1e3);
                        served += flight;
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (elapsed, latencies)
}

/// Drive `total` *admitted* requests across `clients` keep-alive
/// connections against a server whose connection budget is smaller than
/// `clients`. A shed connection (the accept-time `503`, or the reset that
/// can race it on loopback) is counted, backed off briefly, and replaced
/// with a fresh connect, so every thread eventually completes its quota as
/// admitted peers finish and release budget. Returns (elapsed, sorted
/// admitted-request latencies in ms, shed count).
fn drive_overload(
    addr: SocketAddr,
    clients: usize,
    total: usize,
    target: &str,
    bodies: &[String],
) -> (Duration, Vec<f64>, u64) {
    let per_client = total.div_ceil(clients);
    let start = Instant::now();
    let (mut latencies, sheds) = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(per_client);
                    let mut sheds = 0u64;
                    let mut conn: Option<Client> = None;
                    let mut served = 0usize;
                    while served < per_client {
                        let Some(client) = conn.as_mut() else {
                            match Client::try_connect(addr, Duration::from_secs(1)) {
                                Ok(fresh) => conn = Some(fresh),
                                Err(_) => thread::sleep(Duration::from_millis(1)),
                            }
                            continue;
                        };
                        let body = bodies[(index + served * clients) % bodies.len()].as_bytes();
                        let sent = Instant::now();
                        match client.try_request_bytes("POST", target, None, body) {
                            Ok(response) if response.status == 200 => {
                                samples.push(sent.elapsed().as_secs_f64() * 1e3);
                                served += 1;
                            }
                            Ok(response) => {
                                assert_eq!(
                                    response.status, 503,
                                    "unexpected status under overload"
                                );
                                sheds += 1;
                                conn = None;
                                thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => {
                                // The server closed right after its
                                // accept-time 503 and the reset ate the
                                // response bytes; same shed, different race.
                                sheds += 1;
                                conn = None;
                                thread::sleep(Duration::from_millis(1));
                            }
                        }
                    }
                    (samples, sheds)
                })
            })
            .collect();
        handles
            .into_iter()
            .fold((Vec::new(), 0u64), |(mut all, shed), handle| {
                let (samples, count) = handle.join().expect("client thread");
                all.extend(samples);
                (all, shed + count)
            })
    });
    let elapsed = start.elapsed();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (elapsed, latencies, sheds)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index]
}

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 1_000);
    let single_requests = env_usize("TRACKERSIFT_BENCH_HTTP_REQUESTS", 20_000).max(1);
    let batch_requests = env_usize("TRACKERSIFT_BENCH_HTTP_BATCHES", 400).max(1);
    let batch_size = env_usize("TRACKERSIFT_BENCH_HTTP_BATCH_SIZE", 128).max(1);
    let clients = env_usize("TRACKERSIFT_BENCH_HTTP_CLIENTS", 2).max(1);
    let workers = env_usize("TRACKERSIFT_BENCH_HTTP_WORKERS", 2).max(1);
    let pipeline = env_usize("TRACKERSIFT_BENCH_HTTP_PIPELINE", 64).max(1);
    let sweep_requests = env_usize("TRACKERSIFT_BENCH_HTTP_SWEEP_REQUESTS", 20_000).max(1);
    let overload_budget = env_usize("TRACKERSIFT_BENCH_HTTP_OVERLOAD_BUDGET", 4).max(1);
    let overload_requests = env_usize("TRACKERSIFT_BENCH_HTTP_OVERLOAD_REQUESTS", 4_000).max(1);
    let out_path =
        std::env::var("TRACKERSIFT_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".to_string());

    eprintln!(
        "bench_server: {sites} sites, {single_requests} single + {batch_requests}x{batch_size} \
         batch requests, {clients} clients vs {workers} workers …"
    );
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites),
        seed: 2021,
        ..StudyConfig::default()
    });
    // The rewriter is inert for keys-only queries (no URL context), so
    // arming it here leaves the single/batch/binary modes untouched while
    // giving the `rewrite` mode its Decision::Rewrite arm. Training holds
    // back the last 10% of the traffic as a live slice: rewrite decisions
    // only arise where the hierarchy walk falls off below a mixed node,
    // which fully-observed keys never do.
    let split = study.requests.len() * 9 / 10;
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .rewriter(RewriterBuilder::new().default_rules().build())
        .build();
    sifter.observe_all(&study.requests[..split]);
    sifter.commit();
    let (writer, reader) = sifter.into_concurrent();
    let server = VerdictServer::start(
        writer,
        ServerConfig {
            workers,
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start verdict server");
    let addr = server.local_addr();

    // Query bodies drawn from the corpus, keys-only (the lock-free path).
    let messages: Vec<DecisionMessage> = study
        .requests
        .iter()
        .step_by((study.requests.len() / 512).max(1))
        .map(|request| {
            DecisionMessage::new(
                &request.domain,
                &request.hostname,
                &request.initiator_script,
                &request.initiator_method,
            )
        })
        .collect();
    let single_bodies: Vec<String> = messages
        .iter()
        .map(|message| message.to_json_value().render())
        .collect();
    let batch_bodies: Vec<String> = (0..16)
        .map(|offset| {
            let rows: Vec<String> = (0..batch_size)
                .map(|i| single_bodies[(offset * batch_size + i) % single_bodies.len()].clone())
                .collect();
            format!(r#"{{"requests":[{}]}}"#, rows.join(","))
        })
        .collect();

    // Warm up every worker's connection-handling path.
    let (_, _) = drive(addr, clients, clients * 16, "/v1/decisions", &single_bodies);

    let (single_elapsed, single_lat) = drive(
        addr,
        clients,
        single_requests,
        "/v1/decisions",
        &single_bodies,
    );
    let single_served = single_lat.len();
    let (batch_elapsed, batch_lat) = drive(
        addr,
        clients,
        batch_requests,
        "/v1/decisions:batch",
        &batch_bodies,
    );
    let batch_served = batch_lat.len();

    // Rewrite mode: the same sampled requests, now carrying their full URL
    // context. Identifier-decorated URLs on mixed resources come back as
    // per-request rewrite bodies (encoded at serve time); the rest take
    // the usual preformatted path, so the measured rate is the blended
    // cost of serving with URL context on every query.
    let live = &study.requests[split..];
    let url_messages: Vec<DecisionMessage> = live
        .iter()
        .step_by((live.len() / 512).max(1))
        .map(|request| {
            DecisionMessage::new(
                &request.domain,
                &request.hostname,
                &request.initiator_script,
                &request.initiator_method,
            )
            .with_url(&request.url, &request.site_domain, request.resource_type)
        })
        .collect();
    let rewrite_share = url_messages
        .iter()
        .filter(|message| matches!(reader.decide(&message.as_request()), Decision::Rewrite(_)))
        .count() as f64
        / url_messages.len().max(1) as f64;
    let rewrite_bodies: Vec<String> = url_messages
        .iter()
        .map(|message| message.to_json_value().render())
        .collect();
    let (rewrite_elapsed, rewrite_lat) = drive(
        addr,
        clients,
        single_requests,
        "/v1/decisions",
        &rewrite_bodies,
    );
    let rewrite_served = rewrite_lat.len();

    // Binary protocol: complete the key handshake once, then drive
    // id-form fixed-width frames with a pipelined in-flight window.
    let keys = Client::connect(addr).fetch_keys();
    let records: Vec<BinaryRecord<'_>> = messages
        .iter()
        .map(|message| BinaryRecord {
            keys: BinaryKeys::Ids {
                domain: keys.id_of(&message.domain).unwrap_or(u32::MAX),
                hostname: keys.id_of(&message.hostname).unwrap_or(u32::MAX),
                script: keys.id_of(&message.script).unwrap_or(u32::MAX),
                method: keys.id_of(&message.method).unwrap_or(u32::MAX),
            },
            context: None,
        })
        .collect();
    let binary_singles: Vec<Vec<u8>> = records
        .iter()
        .map(|record| {
            wrap_binary(
                "/v1/decisions",
                &wire::encode_binary_single(keys.epoch, record),
            )
        })
        .collect();
    let binary_batches: Vec<Vec<u8>> = (0..16)
        .map(|offset| {
            let rows: Vec<BinaryRecord<'_>> = (0..batch_size)
                .map(|i| records[(offset * batch_size + i) % records.len()])
                .collect();
            wrap_binary(
                "/v1/decisions:batch",
                &wire::encode_binary_batch(keys.epoch, &rows),
            )
        })
        .collect();
    let (_, _) = drive_pipelined(addr, clients, clients * 16, pipeline, &binary_singles);
    let (binary_elapsed, binary_lat) =
        drive_pipelined(addr, clients, single_requests, pipeline, &binary_singles);
    let binary_served = single_requests;
    let (binary_batch_elapsed, binary_batch_lat) =
        drive_pipelined(addr, clients, batch_requests, 4, &binary_batches);
    let binary_batch_served = batch_requests;

    // Connection scheduler sweep: same JSON single-decision load, growing
    // numbers of concurrent keep-alive connections over the fixed pool.
    let sweep: Vec<String> = [2usize, 64, 512]
        .into_iter()
        .map(|conns| {
            let (elapsed, lat) =
                drive(addr, conns, sweep_requests, "/v1/decisions", &single_bodies);
            format!(
                r#"{{
      "clients": {conns},
      "requests": {served},
      "requests_per_sec": {rps:.2},
      "p50_ms": {p50:.4},
      "p99_ms": {p99:.4}
    }}"#,
                served = lat.len(),
                rps = lat.len() as f64 / elapsed.as_secs_f64(),
                p50 = percentile(&lat, 0.50),
                p99 = percentile(&lat, 0.99),
            )
        })
        .collect();
    server.shutdown();

    // Overload: a fresh server whose admission control caps concurrent
    // connections at `overload_budget`, driven by twice that many clients.
    let mut overload_sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    overload_sifter.observe_all(&study.requests);
    overload_sifter.commit();
    let (overload_writer, _overload_reader) = overload_sifter.into_concurrent();
    let overload_server = VerdictServer::start(
        overload_writer,
        ServerConfig {
            workers,
            max_connections: overload_budget,
            retry_after: 1,
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start overload verdict server");
    let overload_clients = overload_budget * 2;
    let (overload_elapsed, overload_lat, overload_sheds) = drive_overload(
        overload_server.local_addr(),
        overload_clients,
        overload_requests,
        "/v1/decisions",
        &single_bodies,
    );
    overload_server.shutdown();
    let overload_admitted = overload_lat.len();
    let overload_shed_rate =
        overload_sheds as f64 / (overload_admitted as f64 + overload_sheds as f64).max(1.0);

    let json = format!(
        r#"{{
  "benchmark": "server",
  "sites": {sites},
  "labeled_requests": {labeled},
  "workers": {workers},
  "clients": {clients},
  "cores": {cores},
  "single": {{
    "requests": {single_served},
    "requests_per_sec": {single_rps:.2},
    "p50_ms": {single_p50:.4},
    "p99_ms": {single_p99:.4}
  }},
  "batch": {{
    "requests": {batch_served},
    "batch_size": {batch_size},
    "requests_per_sec": {batch_rps:.2},
    "decisions_per_sec": {batch_dps:.2},
    "p50_ms": {batch_p50:.4},
    "p99_ms": {batch_p99:.4}
  }},
  "rewrite": {{
    "requests": {rewrite_served},
    "rewrite_share": {rewrite_share:.4},
    "requests_per_sec": {rewrite_rps:.2},
    "p50_ms": {rewrite_p50:.4},
    "p99_ms": {rewrite_p99:.4}
  }},
  "binary": {{
    "requests": {binary_served},
    "pipeline": {pipeline},
    "requests_per_sec": {binary_rps:.2},
    "p50_flight_ms": {binary_p50:.4},
    "p99_flight_ms": {binary_p99:.4},
    "batch": {{
      "requests": {binary_batch_served},
      "batch_size": {batch_size},
      "requests_per_sec": {binary_batch_rps:.2},
      "decisions_per_sec": {binary_batch_dps:.2},
      "p50_ms": {binary_batch_p50:.4},
      "p99_ms": {binary_batch_p99:.4}
    }}
  }},
  "connections": [
    {connections}
  ],
  "overload": {{
    "connection_budget": {overload_budget},
    "clients": {overload_clients},
    "admitted_requests": {overload_admitted},
    "shed_connections": {overload_sheds},
    "shed_rate": {overload_shed_rate:.4},
    "admitted_requests_per_sec": {overload_rps:.2},
    "admitted_p50_ms": {overload_p50:.4},
    "admitted_p99_ms": {overload_p99:.4}
  }}
}}"#,
        labeled = study.requests.len(),
        cores = thread::available_parallelism().map_or(1, usize::from),
        single_rps = single_served as f64 / single_elapsed.as_secs_f64(),
        single_p50 = percentile(&single_lat, 0.50),
        single_p99 = percentile(&single_lat, 0.99),
        batch_rps = batch_served as f64 / batch_elapsed.as_secs_f64(),
        batch_dps = (batch_served * batch_size) as f64 / batch_elapsed.as_secs_f64(),
        batch_p50 = percentile(&batch_lat, 0.50),
        batch_p99 = percentile(&batch_lat, 0.99),
        rewrite_rps = rewrite_served as f64 / rewrite_elapsed.as_secs_f64(),
        rewrite_p50 = percentile(&rewrite_lat, 0.50),
        rewrite_p99 = percentile(&rewrite_lat, 0.99),
        binary_rps = binary_served as f64 / binary_elapsed.as_secs_f64(),
        binary_p50 = percentile(&binary_lat, 0.50),
        binary_p99 = percentile(&binary_lat, 0.99),
        binary_batch_rps = binary_batch_served as f64 / binary_batch_elapsed.as_secs_f64(),
        binary_batch_dps =
            (binary_batch_served * batch_size) as f64 / binary_batch_elapsed.as_secs_f64(),
        binary_batch_p50 = percentile(&binary_batch_lat, 0.50),
        binary_batch_p99 = percentile(&binary_batch_lat, 0.99),
        connections = sweep.join(",\n    "),
        overload_rps = overload_admitted as f64 / overload_elapsed.as_secs_f64(),
        overload_p50 = percentile(&overload_lat, 0.50),
        overload_p99 = percentile(&overload_lat, 0.99),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark output");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
