//! Wire-serving benchmark: requests/sec and latency percentiles of the
//! HTTP/1.1 verdict server, written as a machine-readable
//! `BENCH_server.json` so successive PRs accumulate a perf trajectory.
//!
//! The scenario: a trained sifter behind `VerdictServer`, hammered over
//! loopback by keep-alive clients issuing `POST /v1/decisions` (one
//! decision per request) and `POST /v1/decisions:batch` (many decisions
//! per request, one pinned table per batch). Reported per mode:
//! requests/sec, decisions/sec, and p50/p99 request latency — the numbers
//! that size a deployment (how many proxy workers per verdict server, and
//! what tail the proxy inherits).
//!
//! Scale can be overridden through the environment:
//!
//! * `TRACKERSIFT_BENCH_SITES` — corpus size behind the server (default 1000);
//! * `TRACKERSIFT_BENCH_HTTP_REQUESTS` — single-decision requests (default 20,000);
//! * `TRACKERSIFT_BENCH_HTTP_BATCHES` — batch requests (default 400);
//! * `TRACKERSIFT_BENCH_HTTP_BATCH_SIZE` — decisions per batch (default 128);
//! * `TRACKERSIFT_BENCH_HTTP_CLIENTS` — concurrent client connections (default 2);
//! * `TRACKERSIFT_BENCH_HTTP_WORKERS` — server workers (default 2);
//! * `TRACKERSIFT_BENCH_OUT` — output path (default `BENCH_server.json`).

use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};
use trackersift::{Sifter, Study, StudyConfig};
use trackersift_bench::env_usize;
use trackersift_server::client::Client;
use trackersift_server::wire::DecisionMessage;
use trackersift_server::{ServerConfig, VerdictServer};
use websim::CorpusProfile;

/// Run `total` requests across `clients` keep-alive connections; returns
/// (elapsed, sorted per-request latencies).
fn drive(
    addr: SocketAddr,
    clients: usize,
    total: usize,
    target: &str,
    bodies: &[String],
) -> (Duration, Vec<f64>) {
    let per_client = total.div_ceil(clients);
    let start = Instant::now();
    let mut latencies: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut samples = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let body = &bodies[(index + i * clients) % bodies.len()];
                        let sent = Instant::now();
                        let (status, _) = client.request("POST", target, Some(body));
                        samples.push(sent.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(status, 200, "non-200 response from {target}");
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (elapsed, latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index]
}

fn main() {
    let sites = env_usize("TRACKERSIFT_BENCH_SITES", 1_000);
    let single_requests = env_usize("TRACKERSIFT_BENCH_HTTP_REQUESTS", 20_000).max(1);
    let batch_requests = env_usize("TRACKERSIFT_BENCH_HTTP_BATCHES", 400).max(1);
    let batch_size = env_usize("TRACKERSIFT_BENCH_HTTP_BATCH_SIZE", 128).max(1);
    let clients = env_usize("TRACKERSIFT_BENCH_HTTP_CLIENTS", 2).max(1);
    let workers = env_usize("TRACKERSIFT_BENCH_HTTP_WORKERS", 2).max(1);
    let out_path =
        std::env::var("TRACKERSIFT_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".to_string());

    eprintln!(
        "bench_server: {sites} sites, {single_requests} single + {batch_requests}x{batch_size} \
         batch requests, {clients} clients vs {workers} workers …"
    );
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites),
        seed: 2021,
        ..StudyConfig::default()
    });
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(&study.requests);
    sifter.commit();
    let (writer, _reader) = sifter.into_concurrent();
    let server = VerdictServer::start(
        writer,
        ServerConfig {
            workers,
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start verdict server");
    let addr = server.local_addr();

    // Query bodies drawn from the corpus, keys-only (the lock-free path).
    let messages: Vec<DecisionMessage> = study
        .requests
        .iter()
        .step_by((study.requests.len() / 512).max(1))
        .map(|request| {
            DecisionMessage::new(
                &request.domain,
                &request.hostname,
                &request.initiator_script,
                &request.initiator_method,
            )
        })
        .collect();
    let single_bodies: Vec<String> = messages
        .iter()
        .map(|message| message.to_json_value().render())
        .collect();
    let batch_bodies: Vec<String> = (0..16)
        .map(|offset| {
            let rows: Vec<String> = (0..batch_size)
                .map(|i| single_bodies[(offset * batch_size + i) % single_bodies.len()].clone())
                .collect();
            format!(r#"{{"requests":[{}]}}"#, rows.join(","))
        })
        .collect();

    // Warm up every worker's connection-handling path.
    let (_, _) = drive(addr, clients, clients * 16, "/v1/decisions", &single_bodies);

    let (single_elapsed, single_lat) = drive(
        addr,
        clients,
        single_requests,
        "/v1/decisions",
        &single_bodies,
    );
    let single_served = single_lat.len();
    let (batch_elapsed, batch_lat) = drive(
        addr,
        clients,
        batch_requests,
        "/v1/decisions:batch",
        &batch_bodies,
    );
    let batch_served = batch_lat.len();
    server.shutdown();

    let json = format!(
        r#"{{
  "benchmark": "server",
  "sites": {sites},
  "labeled_requests": {labeled},
  "workers": {workers},
  "clients": {clients},
  "cores": {cores},
  "single": {{
    "requests": {single_served},
    "requests_per_sec": {single_rps:.2},
    "p50_ms": {single_p50:.4},
    "p99_ms": {single_p99:.4}
  }},
  "batch": {{
    "requests": {batch_served},
    "batch_size": {batch_size},
    "requests_per_sec": {batch_rps:.2},
    "decisions_per_sec": {batch_dps:.2},
    "p50_ms": {batch_p50:.4},
    "p99_ms": {batch_p99:.4}
  }}
}}"#,
        labeled = study.requests.len(),
        cores = thread::available_parallelism().map_or(1, usize::from),
        single_rps = single_served as f64 / single_elapsed.as_secs_f64(),
        single_p50 = percentile(&single_lat, 0.50),
        single_p99 = percentile(&single_lat, 0.99),
        batch_rps = batch_served as f64 / batch_elapsed.as_secs_f64(),
        batch_dps = (batch_served * batch_size) as f64 / batch_elapsed.as_secs_f64(),
        batch_p50 = percentile(&batch_lat, 0.50),
        batch_p99 = percentile(&batch_lat, 0.99),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark output");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
