//! Regenerates the paper's **Figure 3 (a–d)**: the distribution of unique
//! domains, hostnames, scripts and script methods over the common-log ratio
//! of tracking to functional requests, with the (-∞,-2] functional band, the
//! (-2,2) mixed band, and the [2,∞) tracking band.

use trackersift::{Granularity, RatioHistogram};

fn main() {
    let study = trackersift_bench::run_experiment_study("figure3");
    for (panel, granularity) in [
        ("(a) domain", Granularity::Domain),
        ("(b) hostname", Granularity::Hostname),
        ("(c) script URL", Granularity::Script),
        ("(d) script method", Granularity::Method),
    ] {
        let level = study.hierarchy.level(granularity);
        let histogram = RatioHistogram::paper_bins(level);
        println!("Figure 3{panel}: {} unique resources", histogram.total());
        println!(
            "  functional (ratio <= -2): {}   mixed (-2..2): {}   tracking (>= 2): {}",
            histogram.functional_mass(2.0),
            histogram.mixed_mass(2.0),
            histogram.tracking_mass(2.0)
        );
        print!("{}", histogram.to_ascii(48));
        println!();
        println!("CSV:");
        print!("{}", histogram.to_csv());
        println!();
    }
}
