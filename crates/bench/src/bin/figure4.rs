//! Regenerates the paper's **Figure 4**: sensitivity of the classification
//! to the log-ratio threshold, swept from 1.0 to 3.0 in steps of 0.1. The
//! paper plots the percentage of *scripts* classified mixed and reports that
//! the curve plateaus around the default threshold of 2.

use trackersift::report::render_sensitivity_csv;
use trackersift::Granularity;

fn main() {
    let study = trackersift_bench::run_experiment_study("figure4");
    let sweep = study.sensitivity_sweep();
    println!("Figure 4: % mixed scripts vs classification threshold");
    print!("{}", render_sensitivity_csv(&sweep));
    println!();
    let plateau = sweep.max_step_change(Granularity::Script, 1.8, 2.2);
    println!(
        "Max step-to-step change in mixed-script share around the default threshold (1.8..2.2): {plateau:.3} percentage points"
    );
}
