//! Shared harness for the experiment-regeneration binaries and the
//! criterion benchmarks.
//!
//! Every binary regenerates one table or figure of the paper from the same
//! deterministic study (same profile, same seed), so their outputs are
//! mutually consistent and match what `EXPERIMENTS.md` records. The scale
//! and seed can be overridden through environment variables:
//!
//! * `TRACKERSIFT_SITES` — number of websites (default 5000; the paper
//!   crawled 100K, the default keeps every binary under a minute on a
//!   laptop while preserving the distributional shape);
//! * `TRACKERSIFT_SEED` — corpus seed (default 2021).

use trackersift::{Study, StudyConfig};
use websim::CorpusProfile;

pub mod baseline;

/// Number of sites used by experiment binaries unless overridden.
pub const DEFAULT_SITES: usize = 5_000;

/// Seed used unless overridden.
pub const DEFAULT_SEED: u64 = 2021;

/// Read a `usize` knob from the environment, falling back to `default`
/// when unset or unparseable (shared by the bench binaries).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read the experiment scale from the environment.
pub fn sites_from_env() -> usize {
    env_usize("TRACKERSIFT_SITES", DEFAULT_SITES)
}

/// Read the experiment seed from the environment.
pub fn seed_from_env() -> u64 {
    std::env::var("TRACKERSIFT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The study configuration the experiment binaries share.
pub fn experiment_config() -> StudyConfig {
    StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites_from_env()),
        seed: seed_from_env(),
        ..StudyConfig::default()
    }
}

/// Run (or reuse) the shared study and print a short provenance banner.
pub fn run_experiment_study(name: &str) -> Study {
    let config = experiment_config();
    eprintln!(
        "[{name}] generating corpus: {} sites, seed {} (override with TRACKERSIFT_SITES / TRACKERSIFT_SEED)",
        config.profile.sites, config.seed
    );
    let study = Study::run(config);
    eprintln!(
        "[{name}] crawl: {} requests captured, {} script-initiated, {} labeled tracking / {} functional",
        study.crawl_summary.total_requests,
        study.crawl_summary.script_initiated_requests,
        study.label_stats.tracking,
        study.label_stats.functional,
    );
    study
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        // The variables are usually unset under `cargo test`.
        if std::env::var("TRACKERSIFT_SITES").is_err() {
            assert_eq!(sites_from_env(), DEFAULT_SITES);
        }
        if std::env::var("TRACKERSIFT_SEED").is_err() {
            assert_eq!(seed_from_env(), DEFAULT_SEED);
        }
        let config = experiment_config();
        assert!(config.profile.validate().is_ok());
    }
}
