//! The pre-PR string-bucket matcher, frozen as a benchmark baseline.
//!
//! Before the token-hash index landed, the engine tokenised every query URL
//! into a fresh `Vec<String>`, kept its buckets keyed by owned token
//! strings, and materialised a sorted candidate list per query. This module
//! reproduces that design exactly (including its per-query allocations) on
//! top of today's parsed [`FilterRule`]s, so `bench_filterlist` can measure
//! the speedup of the hashed, allocation-free match path against the real
//! thing rather than against a straw man.
//!
//! The baseline also reproduces the old index's *boundary bug*: a pattern
//! run was filed as an index token even when it could continue inside a
//! matching URL (`/ads` filed under `ads`, missing `/adserver/…` whose URL
//! token is `adserver`). The benchmark counts the resulting disagreements
//! against the linear scan as `baseline_false_negatives`.

use filterlist::{FilterEngine, FilterRequest, FilterRule, RequestLabel};
use std::collections::HashMap;

/// Extract index tokens from a lower-cased URL: alphanumeric runs of
/// length ≥ 3, as owned strings (the pre-PR query-time tokenizer).
pub fn url_tokens(url_lower: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in url_lower.chars() {
        if c.is_ascii_alphanumeric() {
            current.push(c.to_ascii_lowercase());
        } else {
            if current.len() >= 3 {
                tokens.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if current.len() >= 3 {
        tokens.push(current);
    }
    tokens
}

/// The pre-PR rule tokenizer: runs of the pattern source text, with no
/// boundary analysis.
fn pattern_tokens(rule: &FilterRule) -> Vec<String> {
    let text = rule
        .pattern
        .source()
        .trim_start_matches('|')
        .trim_end_matches('|')
        .to_ascii_lowercase();
    url_tokens(&text)
}

/// A token-indexed collection of rules with `String` buckets (pre-PR).
pub struct StringBucketIndex {
    rules: Vec<FilterRule>,
    buckets: HashMap<String, Vec<usize>>,
    unindexed: Vec<usize>,
}

impl StringBucketIndex {
    /// Build the index, filing each rule under its rarest token.
    pub fn build(rules: Vec<FilterRule>) -> Self {
        let mut index = StringBucketIndex {
            rules,
            buckets: HashMap::new(),
            unindexed: Vec::new(),
        };
        let mut freq: HashMap<String, usize> = HashMap::new();
        let per_rule_tokens: Vec<Vec<String>> = index
            .rules
            .iter()
            .map(|r| {
                let tokens = pattern_tokens(r);
                for t in &tokens {
                    *freq.entry(t.clone()).or_insert(0) += 1;
                }
                tokens
            })
            .collect();
        for (idx, tokens) in per_rule_tokens.into_iter().enumerate() {
            if tokens.is_empty() {
                index.unindexed.push(idx);
                continue;
            }
            let best = tokens
                .into_iter()
                .min_by_key(|t| freq.get(t).copied().unwrap_or(usize::MAX))
                .expect("non-empty token list");
            index.buckets.entry(best).or_default().push(idx);
        }
        index
    }

    /// First matching rule via the string-token candidate scan, allocating
    /// a token vector and a sorted candidate list per query (pre-PR).
    pub fn first_match(&self, request: &FilterRequest) -> Option<&FilterRule> {
        let mut candidates: Vec<usize> = self.unindexed.clone();
        for token in url_tokens(&request.url().lower) {
            if let Some(bucket) = self.buckets.get(&token) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .map(|i| &self.rules[i])
            .find(|r| r.matches(request))
    }
}

/// The pre-PR engine shape: two string-bucket indices.
pub struct StringBucketEngine {
    blocking: StringBucketIndex,
    exceptions: StringBucketIndex,
}

impl StringBucketEngine {
    /// Rebuild the baseline from a compiled engine's rules (cloning them,
    /// as the pre-PR `extend_with_rules` did).
    pub fn from_engine(engine: &FilterEngine) -> Self {
        StringBucketEngine {
            blocking: StringBucketIndex::build(engine.blocking_rules().cloned().collect()),
            exceptions: StringBucketIndex::build(engine.exception_rules().cloned().collect()),
        }
    }

    /// Label a request with pre-PR blocking/exception semantics.
    pub fn label(&self, request: &FilterRequest) -> RequestLabel {
        match self.blocking.first_match(request) {
            Some(_) if self.exceptions.first_match(request).is_none() => RequestLabel::Tracking,
            _ => RequestLabel::Functional,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterlist::{ListKind, ResourceType};

    fn engine() -> FilterEngine {
        FilterEngine::from_lists(&[(
            ListKind::EasyList,
            "||tracker.io^$third-party\n/collect?\n@@||tracker.io/allow/\n",
        )])
    }

    fn req(url: &str) -> FilterRequest {
        FilterRequest::new(url, "shop.com", ResourceType::Script).unwrap()
    }

    #[test]
    fn baseline_agrees_with_the_hashed_engine_on_well_bounded_rules() {
        let hashed = engine();
        let baseline = StringBucketEngine::from_engine(&hashed);
        for url in [
            "https://px.tracker.io/t.js",
            "https://tracker.io/allow/ok.js",
            "https://api.shop.com/collect?id=1",
            "https://img.shop.com/logo.png",
        ] {
            let r = req(url);
            assert_eq!(baseline.label(&r), hashed.label(&r), "{url}");
        }
    }

    #[test]
    fn baseline_reproduces_the_boundary_false_negative() {
        let hashed = FilterEngine::from_lists(&[(ListKind::EasyList, "/ads\n")]);
        let baseline = StringBucketEngine::from_engine(&hashed);
        let r = req("https://x.com/adserver/x.js");
        // The hashed index (and a linear scan) find the match; the old
        // string-bucket index misses it.
        assert_eq!(hashed.label(&r), RequestLabel::Tracking);
        assert_eq!(hashed.evaluate_linear(&r).label(), RequestLabel::Tracking);
        assert_eq!(baseline.label(&r), RequestLabel::Functional);
    }
}
