//! Offline stand-in for `rayon`.
//!
//! Registry access is unavailable in this build environment, so this shim
//! provides the subset of rayon the workspace uses — `par_iter().map(..)
//! .collect()` over slices/`Vec`s plus `ThreadPoolBuilder`/`ThreadPool::install`
//! — implemented with real OS-thread parallelism via `std::thread::scope`.
//! Items are processed in contiguous chunks and re-assembled in input order,
//! so a mapped collect is deterministic regardless of scheduling, exactly the
//! property the pipeline's determinism tests assert.
//!
//! `ThreadPool::install` scopes a thread-count override: parallel iterators
//! evaluated inside the closure split the input across that many worker
//! threads (1 short-circuits to a plain sequential loop on the caller).

use std::cell::Cell;

thread_local! {
    /// 0 = "use the machine default" (available_parallelism).
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed != 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (this shim cannot
/// actually fail to build).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count; 0 means the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing any parallel
    /// iterators it evaluates.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let previous = c.get();
            c.set(self.num_threads);
            let result = op();
            c.set(previous);
            result
        })
    }
}

/// The iterator traits and adaptors.
pub mod iter {
    use super::current_num_threads;

    /// `par_iter()` entry point for by-reference parallel iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by the iterator.
        type Item: 'data;
        /// The iterator type.
        type Iter;

        /// A parallel iterator over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = SliceParIter<'data, T>;

        fn par_iter(&'data self) -> SliceParIter<'data, T> {
            SliceParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = SliceParIter<'data, T>;

        fn par_iter(&'data self) -> SliceParIter<'data, T> {
            SliceParIter { slice: self }
        }
    }

    /// Parallel iterator over a slice.
    #[derive(Debug, Clone, Copy)]
    pub struct SliceParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> SliceParIter<'data, T> {
        /// Map each element through `f`.
        pub fn map<R, F>(self, f: F) -> MapParIter<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            MapParIter {
                slice: self.slice,
                f,
            }
        }
    }

    /// The result of `par_iter().map(f)`; evaluated on `collect`.
    #[derive(Debug)]
    pub struct MapParIter<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> MapParIter<'data, T, F> {
        /// Evaluate the map in parallel, preserving input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let threads = current_num_threads().clamp(1, self.slice.len().max(1));
            if threads <= 1 || self.slice.len() <= 1 {
                return self.slice.iter().map(&self.f).collect();
            }
            let chunk_size = self.slice.len().div_ceil(threads);
            let f = &self.f;
            let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .slice
                    .chunks(chunk_size)
                    .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel map worker panicked"))
                    .collect()
            });
            chunks.into_iter().flatten().collect()
        }
    }
}

/// The customary glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(super::current_num_threads(), 3));
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<i32> = single.install(|| vec![1, 2, 3].par_iter().map(|x| x + 1).collect());
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
