//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no registry access, so this shim implements the
//! exact surface the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension trait with `gen_range` (half-open and inclusive
//! integer/float ranges) and `gen_bool`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic, portable, and of more than
//! sufficient quality for the synthetic corpus. Streams differ from the real
//! `rand::rngs::StdRng` (which is documented as non-portable anyway); every
//! consumer in this workspace only relies on seeded determinism, not on a
//! specific stream.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` built from the high 53 bits of a word.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// The span arithmetic is done with wrapping u128 ops so signed ranges with
// negative bounds work: both bounds sign-extend consistently, so the
// wrapped difference is the true span, and wrapping_add folds the offset
// back into range without tripping debug overflow checks.
macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.0..1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(2..=3);
            assert!((2..=3).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_with_negative_bounds_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen_negative = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
            seen_negative |= x < 0;
            let y = rng.gen_range(-128i8..127);
            assert!((-128..127).contains(&y));
        }
        assert!(seen_negative);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
