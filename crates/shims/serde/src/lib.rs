//! Offline stand-in for the real `serde`.
//!
//! Mirrors the two names the workspace imports (`serde::Serialize`,
//! `serde::Deserialize`) as marker traits plus the matching derive macros.
//! The derives expand to nothing — persistence is implemented by the
//! hand-rolled [`crawler::json`] codec — so these annotations are inert
//! documentation of serialisability until a real registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
