//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this shim implements the
//! slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//!   expanding each property into a `#[test]` that runs `cases` seeded
//!   deterministic iterations;
//! * [`Strategy`] with `prop_map`, tuples, integer/float ranges,
//!   `prop::collection::vec`, `prop::option::of`, and pattern-string
//!   strategies (a small generator for the `[a-z]{2,8}`-style regex subset
//!   the tests use);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! There is no shrinking: a failing case panics with the generated inputs in
//! the assertion message, and the deterministic per-test seed makes every
//! failure reproducible by re-running the test.

use std::ops::Range;

// ---------------------------------------------------------------------------
// deterministic RNG (xoshiro256** seeded from the test name)
// ---------------------------------------------------------------------------

/// Deterministic test RNG. Public so the macro expansion can construct it;
/// not part of the mirrored proptest API.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// A generator seeded from the test name, so each property has a stable
    /// stream across runs and platforms.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = hash;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// An unweighted union of strategies, mirroring what
/// [`prop_oneof!`](crate::prop_oneof) builds: each generation picks one of
/// the options uniformly at random.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Build a union from boxed options (use [`Union::boxed`] to erase each
    /// strategy's concrete type).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Type-erase a strategy so heterogeneous options can share a `Vec`.
    pub fn boxed<S: Strategy<Value = T> + 'static>(strategy: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.usize_in(0..self.options.len());
        self.options[pick].new_value(rng)
    }
}

/// Mirror of `proptest::prop_oneof!` (unweighted form): generate from one
/// of the listed strategies, chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($strategy)),+])
    };
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
            self.3.new_value(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
            self.3.new_value(rng),
            self.4.new_value(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// pattern-string strategies ("[a-z]{2,8}(\\.[a-z]{1,8}){0,4}" …)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<char>),
    AnyPrintable,
    Group(Vec<(Atom, Rep)>),
}

#[derive(Debug, Clone, Copy)]
struct Rep {
    min: usize,
    max: usize,
}

impl Default for Rep {
    fn default() -> Self {
        Rep { min: 1, max: 1 }
    }
}

fn parse_pattern(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    in_group: bool,
) -> Vec<(Atom, Rep)> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        if in_group && c == ')' {
            chars.next();
            break;
        }
        chars.next();
        let atom = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                while let Some(cc) = chars.next() {
                    match cc {
                        ']' => break,
                        '-' => {
                            let (Some(lo), Some(&hi)) = (prev, chars.peek()) else {
                                class.push('-');
                                continue;
                            };
                            chars.next();
                            for ch in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(ch) {
                                    class.push(ch);
                                }
                            }
                            prev = None;
                        }
                        other => {
                            class.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!class.is_empty(), "empty character class in pattern");
                Atom::Class(class)
            }
            '(' => Atom::Group(parse_pattern(chars, true)),
            '\\' => match chars.next() {
                // `\PC` / `\pC` — a Unicode-category escape; generate any
                // printable character.
                Some('P') | Some('p') => {
                    chars.next();
                    Atom::AnyPrintable
                }
                Some(escaped) => Atom::Literal(escaped),
                None => Atom::Literal('\\'),
            },
            '.' => Atom::AnyPrintable,
            literal => Atom::Literal(literal),
        };
        let rep = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                };
                Rep { min, max }
            }
            Some('?') => {
                chars.next();
                Rep { min: 0, max: 1 }
            }
            Some('*') => {
                chars.next();
                Rep { min: 0, max: 8 }
            }
            Some('+') => {
                chars.next();
                Rep { min: 1, max: 8 }
            }
            _ => Rep::default(),
        };
        atoms.push((atom, rep));
    }
    atoms
}

const PRINTABLE_EXTRA: [char; 8] = ['é', 'ß', '中', '🦀', 'Ж', '\u{00A0}', '¿', 'π'];

fn generate_atoms(atoms: &[(Atom, Rep)], rng: &mut TestRng, out: &mut String) {
    for (atom, rep) in atoms {
        let count = if rep.min == rep.max {
            rep.min
        } else {
            rng.usize_in(rep.min..rep.max + 1)
        };
        for _ in 0..count {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(class) => out.push(class[rng.usize_in(0..class.len())]),
                Atom::AnyPrintable => {
                    // Mostly printable ASCII with a sprinkling of wider
                    // Unicode, which is what the robustness tests are after.
                    if rng.usize_in(0..8) == 0 {
                        out.push(PRINTABLE_EXTRA[rng.usize_in(0..PRINTABLE_EXTRA.len())]);
                    } else {
                        out.push(char::from(rng.usize_in(0x20..0x7F) as u8));
                    }
                }
                Atom::Group(inner) => generate_atoms(inner, rng, out),
            }
        }
    }
}

impl Strategy for str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut chars = self.chars().peekable();
        let atoms = parse_pattern(&mut chars, false);
        let mut out = String::new();
        generate_atoms(&atoms, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        self.as_str().new_value(rng)
    }
}

// ---------------------------------------------------------------------------
// collection / option strategies
// ---------------------------------------------------------------------------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with `size` elements, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` about a third of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Mirrors `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.usize_in(0..3) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// config + macros
// ---------------------------------------------------------------------------

/// Per-property configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declare property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the mirrored API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = {
                            let strategy = $strat;
                            $crate::Strategy::new_value(&strategy, &mut rng)
                        };
                    )+
                    // `mut` is only needed when the body mutates captured
                    // state; same-crate expansions see the lint, so allow it.
                    #[allow(unused_mut)]
                    let mut run_case = || $body;
                    let () = run_case();
                }
            }
        )+
    };
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Mirrors `proptest::prop_assume!`: skip the rest of the case when the
/// precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{ProptestConfig, Strategy, Union};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.5f64..4.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..4.0).contains(&y));
        }

        #[test]
        fn patterns_match_shape(host in "[a-z]{2,8}", dotted in "[a-z]{1,4}(\\.[a-z]{1,4}){0,3}") {
            prop_assert!(host.len() >= 2 && host.len() <= 8);
            prop_assert!(host.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(dotted.split('.').all(|part| (1..=4).contains(&part.len())));
        }

        #[test]
        fn tuples_vectors_and_options_compose(
            parts in prop::collection::vec("[a-z0-9]{1,8}", 0..4),
            maybe in prop::option::of(0u64..5),
        ) {
            prop_assert!(parts.len() < 4);
            if let Some(v) = maybe {
                prop_assert!(v < 5);
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strategy = (0u64..5).prop_map(|n| n * 10);
        let mut rng = crate::TestRng::deterministic("prop_map_transforms");
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }
}
