//! Offline stand-in for the real `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real serde stack cannot be vendored. The workspace only uses the derives
//! as annotations (JSON persistence goes through the hand-rolled
//! `crawler::json` codec), so the derive macros here expand to nothing: the
//! `#[derive(Serialize, Deserialize)]` attributes on the data model stay in
//! place, ready to switch back to the real serde when a registry is
//! available, without generating any code today.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts the `#[serde(...)]` helper attributes
/// the data model uses (e.g. `#[serde(default)]`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
