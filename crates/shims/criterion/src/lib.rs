//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `Bencher::iter_batched`, throughput annotation) as a plain wall-clock
//! harness: each benchmark runs `sample_size` timed samples and prints the
//! per-iteration mean and min. No statistics, plots, or baselines — just
//! enough to keep `cargo bench` working and comparable run-over-run until a
//! registry is available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup (ignored by this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring criterion's display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing context handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            iters_per_sample: 1,
            sample_size,
        }
    }

    /// Time `routine`, repeating it `sample_size` times.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / (self.samples.len() as u32 * self.iters_per_sample as u32);
        let min =
            self.samples.iter().min().copied().unwrap_or_default() / self.iters_per_sample as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: mean {mean:?}, min {min:?} over {} samples{rate}",
            self.samples.len()
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the group's throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Finish the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Accept and ignore CLI arguments (API parity with criterion).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
