//! # scheduler — continuous re-crawl of an evolving web
//!
//! The paper measures a *snapshot* of the web; real deployments re-crawl,
//! because the tracking ecosystem moves underneath them — scripts hop CDNs,
//! endpoints re-draw their paths, new pixels appear. This crate closes that
//! loop: a [`Scheduler`] owns a [websim](websim) corpus and an
//! [`EcosystemMutator`], and each [`tick`](Scheduler::tick) advances the
//! simulated web one epoch, re-crawls every site through a
//! [`SifterWriter`]'s observe/commit path, and reads the verdict drift the
//! epoch caused out of the writer's revision ring.
//!
//! Two attribution keyings are supported, selected by [`ScriptKeying`]:
//!
//! * [`ScriptKeying::Url`] — the paper's scheme: scripts are keyed by
//!   origin URL. A CDN rotation orphans every script-granularity verdict.
//! * [`ScriptKeying::Fingerprint`] — ASTrack-style content identity via
//!   [`websim::fingerprint_key`]: the key hashes the script's behavioural
//!   shape, so it survives CDN and path rotation.
//!
//! The scheduler measures the difference directly: after each mutation
//! epoch, and *before* re-crawling, it probes every rotated script — did
//! the verdict keyed under the active keying survive the rotation? The
//! running probe/hit tally is exported through
//! [`SchedulerStats`](trackersift_server::SchedulerStats) and, when the
//! scheduler is attached to a
//! [`VerdictServer`](trackersift_server::VerdictServer), the `scheduler`
//! section of `GET /v1/stats`.
//!
//! ```
//! use scheduler::{Scheduler, SchedulerConfig, ScriptKeying};
//! use trackersift_server::SchedulerDriver;
//!
//! let config = SchedulerConfig::new(7)
//!     .with_sites(20)
//!     .with_keying(ScriptKeying::Fingerprint);
//! let mut scheduler = Scheduler::new(config);
//! let (mut writer, reader) = scheduler.sifter_pair();
//!
//! let seed = scheduler.tick(&mut writer); // epoch 0: the seed crawl
//! assert_eq!(seed.epoch, 0);
//! assert!(seed.observations > 0);
//!
//! let next = scheduler.tick(&mut writer); // epoch 1: mutate, probe, re-crawl
//! assert_eq!(next.epoch, 1);
//! assert_eq!(next.version, seed.version + 1);
//! assert_eq!(reader.pin().version(), next.version);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use filterlist::registrable_domain;
use trackersift::{
    Granularity, ObserveOutcome, Sifter, SifterReader, SifterWriter, Verdict, VerdictRequest,
};
use trackersift_server::{SchedulerDriver, SchedulerStats, TickSummary};
use websim::{
    filter_rules, fingerprint_key, CorpusGenerator, CorpusProfile, EcosystemMutator,
    MutationConfig, PageScript, ScriptRotation, WebCorpus,
};

/// How the re-crawl attributes script-initiated requests to a script key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScriptKeying {
    /// Key scripts by origin URL — the paper's scheme. Verdicts at script
    /// granularity are orphaned by every CDN rotation.
    #[default]
    Url,
    /// Key scripts by behavioural content fingerprint
    /// ([`websim::fingerprint_key`]) — verdicts survive URL rotation.
    Fingerprint,
}

/// Configuration for a [`Scheduler`]: the corpus it simulates, how the
/// ecosystem mutates between epochs, and the attribution keying.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Seed for both corpus generation and mutation. Two schedulers built
    /// from equal configs evolve byte-identically.
    pub seed: u64,
    /// Number of websites in the simulated corpus.
    pub sites: usize,
    /// Per-epoch mutation rates.
    pub mutation: MutationConfig,
    /// Attribution keying for script-initiated requests.
    pub keying: ScriptKeying,
}

impl SchedulerConfig {
    /// A 40-site corpus with default mutation rates and URL keying.
    pub fn new(seed: u64) -> Self {
        SchedulerConfig {
            seed,
            sites: 40,
            mutation: MutationConfig::default(),
            keying: ScriptKeying::Url,
        }
    }

    /// Set the corpus size.
    pub fn with_sites(mut self, sites: usize) -> Self {
        self.sites = sites;
        self
    }

    /// Set the per-epoch mutation rates.
    pub fn with_mutation(mut self, mutation: MutationConfig) -> Self {
        self.mutation = mutation;
        self
    }

    /// Set the attribution keying.
    pub fn with_keying(mut self, keying: ScriptKeying) -> Self {
        self.keying = keying;
        self
    }
}

/// The continuous re-crawl loop: owns the evolving corpus and drives a
/// [`SifterWriter`] through one crawl epoch per [`tick`](Scheduler::tick).
///
/// Implements [`SchedulerDriver`], so it can be attached to a
/// [`VerdictServer`](trackersift_server::VerdictServer) via
/// [`start_with_scheduler`](trackersift_server::VerdictServer::start_with_scheduler)
/// and ticked over the wire with `POST /v1/tick`; the drift each epoch
/// causes is then diffable with `GET /v1/revisions?diff=a..b`.
///
/// Everything is deterministic from [`SchedulerConfig::seed`]: the corpus,
/// every mutation epoch, the crawl order, and therefore the writer's entire
/// revision ring.
#[derive(Debug)]
pub struct Scheduler {
    corpus: WebCorpus,
    mutator: EcosystemMutator,
    keying: ScriptKeying,
    /// Epoch the next tick will crawl; 0 until the seed crawl has run.
    epoch: u64,
    stats: SchedulerStats,
}

impl Scheduler {
    /// Generate the epoch-0 corpus and set up the mutator.
    pub fn new(config: SchedulerConfig) -> Self {
        let corpus = CorpusGenerator::generate(
            &CorpusProfile::small().with_sites(config.sites),
            config.seed,
        );
        Scheduler {
            mutator: EcosystemMutator::new(config.seed, config.mutation),
            corpus,
            keying: config.keying,
            epoch: 0,
            stats: SchedulerStats::default(),
        }
    }

    /// The corpus in its current epoch.
    pub fn corpus(&self) -> &WebCorpus {
        &self.corpus
    }

    /// The epoch the next [`tick`](Scheduler::tick) will crawl.
    pub fn next_epoch(&self) -> u64 {
        self.epoch
    }

    /// A writer/reader pair whose filter engine matches this scheduler's
    /// ecosystem — the counterpart the loop is meant to feed. The engine
    /// covers the simulated tracking services on top of the built-in
    /// EasyList/EasyPrivacy-style rules, so crawled requests label.
    pub fn sifter_pair(&self) -> (SifterWriter, SifterReader) {
        Sifter::builder()
            .engine(filter_rules::engine_for(&self.corpus.ecosystem))
            .build_concurrent()
    }

    /// The fraction of retention probes that hit so far, if any ran.
    pub fn retention_rate(&self) -> Option<f64> {
        if self.stats.retention_probes == 0 {
            None
        } else {
            Some(self.stats.retention_hits as f64 / self.stats.retention_probes as f64)
        }
    }

    /// The attribution key the active keying assigns `script`.
    fn script_key(&self, script: &PageScript) -> String {
        match self.keying {
            ScriptKeying::Url => script.origin.url().to_string(),
            ScriptKeying::Fingerprint => fingerprint_key(script),
        }
    }

    /// For every rotated script, ask whether the verdict keyed under the
    /// active keying survived the rotation. Runs against the *published*
    /// state, before the re-crawl re-learns the new keys — exactly the
    /// window where a deployed blocker is blind.
    ///
    /// Only rotations whose pre-rotation key actually carried a script- or
    /// method-granularity verdict count as probes: a verdict decided at
    /// hostname or domain granularity never consulted the script key, so
    /// rotation cannot orphan it.
    fn probe_retention(&mut self, rotations: &[ScriptRotation], writer: &SifterWriter) {
        let sifter = writer.sifter();
        for rotation in rotations {
            let script = &self.corpus.websites[rotation.site].scripts[rotation.script];
            let fingerprint;
            let (old_key, new_key) = match self.keying {
                ScriptKeying::Url => (rotation.old_url.as_str(), rotation.new_url.as_str()),
                ScriptKeying::Fingerprint => {
                    // Content identity: rotation does not change the shape,
                    // so the old and the new crawl share one key.
                    fingerprint = fingerprint_key(script);
                    (fingerprint.as_str(), fingerprint.as_str())
                }
            };
            for (method_index, request) in script.planned_requests() {
                let Some(host) = host_of(&request.url) else {
                    continue;
                };
                let domain = registrable_domain(host);
                let method = &script.methods[method_index].name;
                let before = sifter.verdict(&VerdictRequest::new(&domain, host, old_key, method));
                let fine = matches!(
                    before,
                    Verdict::Decided {
                        granularity: Granularity::Script | Granularity::Method,
                        ..
                    }
                );
                if !fine {
                    continue;
                }
                self.stats.retention_probes += 1;
                let after = sifter.verdict(&VerdictRequest::new(&domain, host, new_key, method));
                if after == before {
                    self.stats.retention_hits += 1;
                }
                break;
            }
        }
    }

    /// Observe every planned request in the corpus: script-initiated
    /// requests under the keying-selected script key, document-initiated
    /// requests (pixels, stylesheets) under a per-page pseudo-key so that
    /// emerged pixels drive drift too.
    fn crawl(&self, writer: &mut SifterWriter) -> u64 {
        let mut observations = 0u64;
        for site in &self.corpus.websites {
            for script in &site.scripts {
                let key = self.script_key(script);
                for (method_index, request) in script.planned_requests() {
                    let method = &script.methods[method_index].name;
                    let outcome = writer.observe_url(
                        &request.url,
                        &site.hostname,
                        request.resource_type,
                        &key,
                        method,
                    );
                    if matches!(outcome, ObserveOutcome::Observed(_)) {
                        observations += 1;
                    }
                }
            }
            let page_key = format!("page:{}", site.hostname);
            for request in &site.non_script_requests {
                let outcome = writer.observe_url(
                    &request.url,
                    &site.hostname,
                    request.resource_type,
                    &page_key,
                    "html",
                );
                if matches!(outcome, ObserveOutcome::Observed(_)) {
                    observations += 1;
                }
            }
        }
        observations
    }
}

impl SchedulerDriver for Scheduler {
    /// Run one crawl epoch. Epoch 0 is the seed crawl of the pristine
    /// corpus; every later epoch first advances the ecosystem one mutation
    /// step, probes key retention across the rotations it applied, then
    /// re-crawls and commits. The committed revision's change count is the
    /// epoch's drift.
    fn tick(&mut self, writer: &mut SifterWriter) -> TickSummary {
        let epoch = self.epoch;
        if epoch > 0 {
            let report = self.mutator.advance(&mut self.corpus, epoch);
            self.stats.rotated_cdn_scripts += report.rotations.len() as u64;
            self.stats.rotated_paths += report.path_rotations as u64;
            self.stats.emerged_pixels += report.emerged_requests as u64;
            self.probe_retention(&report.rotations, writer);
        }
        let observations = self.crawl(writer);
        writer.commit();
        let version = writer.published_version();
        let drift_events = writer
            .revisions()
            .last()
            .filter(|revision| revision.version() == version)
            .map_or(0, |revision| revision.changes().len() as u64);
        self.stats.drift_events += drift_events;
        self.stats.epoch = epoch;
        self.stats.ticks += 1;
        self.epoch += 1;
        TickSummary {
            epoch,
            observations,
            drift_events,
            version,
        }
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }
}

/// The hostname of an `https://` / `http://` URL, or `None` for anything
/// else (data URIs, garbage).
fn host_of(url: &str) -> Option<&str> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))?;
    let end = rest.find('/').unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackersift::frames::encode_revision_list;

    fn churny_config(keying: ScriptKeying) -> SchedulerConfig {
        SchedulerConfig::new(11)
            .with_sites(30)
            .with_mutation(MutationConfig::churny())
            .with_keying(keying)
    }

    #[test]
    fn seed_crawl_observes_and_publishes() {
        let mut scheduler = Scheduler::new(SchedulerConfig::new(3).with_sites(10));
        let (mut writer, reader) = scheduler.sifter_pair();
        let summary = scheduler.tick(&mut writer);
        assert_eq!(summary.epoch, 0);
        assert!(summary.observations > 0);
        assert_eq!(summary.version, 1);
        assert!(summary.drift_events > 0, "seed crawl must decide something");
        assert_eq!(reader.pin().version(), 1);
        assert_eq!(scheduler.stats().ticks, 1);
        assert_eq!(scheduler.stats().retention_probes, 0);
    }

    #[test]
    fn ticks_advance_epochs_and_mutate() {
        let mut scheduler = Scheduler::new(churny_config(ScriptKeying::Url));
        let (mut writer, _reader) = scheduler.sifter_pair();
        for expected_epoch in 0..4 {
            let summary = scheduler.tick(&mut writer);
            assert_eq!(summary.epoch, expected_epoch);
            assert_eq!(summary.version, expected_epoch + 1);
        }
        let stats = scheduler.stats();
        assert_eq!(stats.ticks, 4);
        assert_eq!(stats.epoch, 3);
        assert!(stats.rotated_cdn_scripts > 0, "churny rates must rotate");
        assert_eq!(writer.revisions().len(), 4);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let run = |ticks: usize| {
            let mut scheduler = Scheduler::new(churny_config(ScriptKeying::Fingerprint));
            let (mut writer, _reader) = scheduler.sifter_pair();
            for _ in 0..ticks {
                scheduler.tick(&mut writer);
            }
            encode_revision_list(writer.published_version(), writer.revisions())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn fingerprint_keying_retains_where_url_keying_loses() {
        let run = |keying: ScriptKeying| {
            let mut scheduler = Scheduler::new(churny_config(keying));
            let (mut writer, _reader) = scheduler.sifter_pair();
            for _ in 0..6 {
                scheduler.tick(&mut writer);
            }
            let stats = scheduler.stats();
            assert!(
                stats.retention_probes >= 5,
                "need a real denominator, got {}",
                stats.retention_probes
            );
            scheduler.retention_rate().unwrap()
        };
        assert!(run(ScriptKeying::Fingerprint) >= 0.9);
        assert!(run(ScriptKeying::Url) <= 0.1);
    }

    #[test]
    fn host_of_parses_urls() {
        assert_eq!(host_of("https://a.b.c/x?y=1"), Some("a.b.c"));
        assert_eq!(host_of("http://a.b"), Some("a.b"));
        assert_eq!(host_of("data:text/plain,hi"), None);
        assert_eq!(host_of("https:///nohost"), None);
    }
}
