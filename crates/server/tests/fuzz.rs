//! Hostile-input tests of the wire layer: malformed, truncated, and
//! oversized HTTP requests must produce a 4xx/5xx answer (or a clean
//! close) — never a panic, and never a wedged worker. After every burst of
//! garbage the pool must still answer a well-formed request.

use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use trackersift::Sifter;
use trackersift_server::client::Client;
use trackersift_server::{ServerConfig, VerdictServer};

fn start_server() -> VerdictServer {
    let mut sifter = Sifter::builder().build();
    for _ in 0..5 {
        sifter.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
    }
    sifter.commit();
    let (writer, _reader) = sifter.into_concurrent();
    VerdictServer::start(
        writer,
        ServerConfig {
            workers: 2,
            max_body_bytes: 16 * 1024,
            // Short timeout: truncated requests release their worker fast.
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start verdict server")
}

/// The pool still serves after whatever the previous connection did.
fn assert_alive(server: &VerdictServer) {
    let mut client = Client::connect(server.local_addr());
    let (status, body) = client.request("GET", "/healthz", None);
    assert_eq!((status, body.as_str()), (200, "ok"));
}

#[test]
fn handcrafted_malformed_requests_get_4xx_not_a_wedge() {
    let server = start_server();
    let cases: Vec<(Vec<u8>, u16)> = vec![
        // Not HTTP at all.
        (b"EHLO verdicts\r\n\r\n".to_vec(), 400),
        // Bad request line shape.
        (b"GET /healthz\r\n\r\n".to_vec(), 400),
        // Unsupported protocol version.
        (b"GET /healthz HTTP/2.0\r\n\r\n".to_vec(), 400),
        // Header without a colon.
        (b"GET /healthz HTTP/1.1\r\nnocolon\r\n\r\n".to_vec(), 400),
        // Unparseable content-length.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            400,
        ),
        // Non-canonical content-length (RFC 9112 framing is digits only).
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: +17\r\n\r\n".to_vec(),
            400,
        ),
        // Declared body far beyond the configured cap.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".to_vec(),
            413,
        ),
        // Transfer-encoding is refused, not guessed about.
        (
            b"POST /v1/decisions HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            501,
        ),
        // Duplicate content-length is the request-smuggling vector: reject,
        // never pick one.
        (
            b"POST /v1/commit HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 44\r\n\r\n".to_vec(),
            400,
        ),
        // ...even when the duplicates agree: two framings is two framings.
        (
            b"POST /v1/commit HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
            400,
        ),
        // u64::MAX + 1: overflows usize, must be a 400, not a wraparound
        // into a small (smuggleable) body length.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n".to_vec(),
            400,
        ),
        // Digits-only but saturating: still just "too big", never a panic.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n"
                .to_vec(),
            400,
        ),
        // Binary content-type with a garbage frame: typed 400 from the
        // frame decoder, not a hang or a panic.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Type: application/x-trackersift-verdict\r\nContent-Length: 5\r\n\r\n\x09\x07zzz".to_vec(),
            400,
        ),
        // Binary frame truncated relative to its own length prefix: a
        // string-form record whose domain claims 4 GiB of bytes.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Type: application/x-trackersift-verdict\r\nContent-Length: 16\r\n\r\n\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff".to_vec(),
            400,
        ),
        // Valid HTTP, invalid JSON body.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot-json!".to_vec(),
            400,
        ),
        // Valid JSON, wrong shape.
        (
            b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"domain\":1}\n".to_vec(),
            400,
        ),
    ];
    for (bytes, expected) in cases {
        let mut client = Client::connect(server.local_addr());
        let reply = client.send_raw(&bytes);
        let (status, _) = reply
            .unwrap_or_else(|| panic!("no response for {:?}", String::from_utf8_lossy(&bytes)));
        assert_eq!(
            status,
            expected,
            "for {:?}",
            String::from_utf8_lossy(&bytes)
        );
        assert_alive(&server);
    }
    // Oversized headers drip-fed line by line.
    let mut client = Client::connect(server.local_addr());
    let mut garbage = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        garbage.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    garbage.extend_from_slice(b"\r\n");
    let (status, _) = client.send_raw(&garbage).expect("431 response");
    assert_eq!(status, 431);
    assert_alive(&server);

    // A connection that sends a truncated head then goes silent: the read
    // timeout must release the worker.
    let mut half = TcpStream::connect(server.local_addr()).expect("connect");
    half.write_all(b"GET /healthz HTT").expect("write prefix");
    std::thread::sleep(Duration::from_millis(450));
    assert_alive(&server);
    drop(half);

    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random query strings on `GET /v1/revisions`: every request is
    /// answered with a typed status — 200 only when the garbage happens to
    /// spell a valid `diff=a..b` inside the ring, a 4xx otherwise — and
    /// the pool keeps serving afterwards. The character class is biased
    /// toward the real query grammar (`diff`, digits, `..`, `&`, `=`) so a
    /// meaningful fraction of cases lands near the parser's edges instead
    /// of failing at the first byte.
    #[test]
    fn revision_query_garbage_gets_typed_answers(
        query in "[dif=&.0-9a-z%_]{0,24}",
    ) {
        static SERVER: std::sync::OnceLock<VerdictServer> = std::sync::OnceLock::new();
        let server = SERVER.get_or_init(start_server);
        let mut client = Client::connect(server.local_addr());
        let target = format!("/v1/revisions?{query}");
        let (status, body) = client.request("GET", &target, None);
        prop_assert!(
            status == 200 || status == 400 || status == 404,
            "{target} -> {status}: {body}"
        );
        if status == 200 {
            // Whatever parsed must be a well-formed revision body.
            prop_assert!(body.starts_with("{\"from\":") || body.starts_with("{\"version\":"), "{body}");
        } else {
            prop_assert!(body.contains("error"), "{target} -> {body}");
        }
        let mut probe = Client::connect(server.local_addr());
        let (status, body) = probe.request("GET", "/healthz", None);
        prop_assert_eq!((status, body.as_str()), (200, "ok"));
    }

    /// Random bytes, random truncations of a valid request, and random
    /// header garbage: every connection gets an answer (or a clean close)
    /// and the pool keeps serving afterwards.
    #[test]
    fn random_garbage_never_wedges_the_pool(
        bytes in prop::collection::vec(0u8..255, 1..600),
        mode in 0usize..4,
        cut in 1usize..60,
    ) {
        // One shared server across every case: garbage never changes
        // serving state, and a wedged worker in an early case would fail
        // the health probe of a later one.
        static SERVER: std::sync::OnceLock<VerdictServer> = std::sync::OnceLock::new();
        let server = SERVER.get_or_init(start_server);
        let payload = match mode {
            // Raw garbage.
            0 => bytes.clone(),
            // A valid request truncated mid-head.
            1 => {
                let valid = b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}{}".to_vec();
                valid[..cut.min(valid.len())].to_vec()
            }
            // A well-formed HTTP request carrying random bytes as a binary
            // decision frame: the frame decoder must answer 400, never
            // hang or panic. (A random payload starting with a valid
            // proto/kind/epoch/record prefix is astronomically unlikely,
            // and would be a legitimate 200 anyway — the assertion below
            // only fires on non-error statuses for *unparseable* input,
            // so keep the first byte off the real protocol version.)
            3 => {
                let mut frame = bytes.clone();
                if frame.first() == Some(&1) {
                    frame[0] = 2;
                }
                let mut v = format!(
                    "POST /v1/decisions HTTP/1.1\r\nContent-Type: application/x-trackersift-verdict\r\nContent-Length: {}\r\n\r\n",
                    frame.len()
                ).into_bytes();
                v.extend_from_slice(&frame);
                v
            }
            // A valid request line followed by garbage headers. Strip ':'
            // and '\r' (and guarantee at least one byte) so the garbage can
            // never accidentally form a valid, colon-separated header block
            // — the property below asserts a 4xx.
            _ => {
                let mut v = b"GET /v1/stats HTTP/1.1\r\n".to_vec();
                let garbage: Vec<u8> = bytes
                    .iter()
                    .copied()
                    .filter(|&b| b != b':' && b != b'\r')
                    .collect();
                if garbage.is_empty() {
                    v.push(b'x');
                } else {
                    v.extend_from_slice(&garbage);
                }
                v.extend_from_slice(b"\r\n\r\n");
                v
            }
        };
        let mut client = Client::connect(server.local_addr());
        // Whatever happens, it must not hang: send_raw reads to close or
        // timeout. A `Some` reply must be an error status, never 2xx for
        // garbage that cannot parse as a full valid request.
        if let Some((status, _)) = client.send_raw(&payload) {
            prop_assert!(status >= 400, "garbage got {status}");
        }
        // The pool survived.
        let mut probe = Client::connect(server.local_addr());
        let (status, body) = probe.request("GET", "/healthz", None);
        prop_assert_eq!((status, body.as_str()), (200, "ok"));
        // The shared server stays up for the remaining cases.
    }
}
