//! Golden request/response fixtures for every endpoint, the snapshot
//! export/import round trip over the wire, and the acceptance property:
//! a `Decision` served over HTTP is byte-identical to the in-process
//! decision for the same snapshot — surrogate payloads included.

use crawler::json::Value;
use proptest::prelude::*;
use std::time::Duration;
use trackersift::{Decision, DecisionRequest, Sifter};
use trackersift_server::client::{Client, RetryPolicy, RetryingClient};
use trackersift_server::wire::{
    self, BinaryKeys, BinaryRecord, DecisionMessage, ObservationMessage,
};
use trackersift_server::{DurabilityConfig, ServerConfig, VerdictServer};

/// The fixed training set behind the golden fixtures: one pure tracking
/// domain, one pure functional domain, and one mixed chain ending in a
/// mixed script whose methods span all three classifications.
fn trained_sifter() -> Sifter {
    let mut sifter = Sifter::builder().build();
    for _ in 0..5 {
        sifter.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        sifter.observe_parts(
            "cdn.com",
            "a.cdn.com",
            "https://pub.com/ui.js",
            "load",
            false,
        );
    }
    for _ in 0..6 {
        sifter.observe_parts(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "track",
            true,
        );
        sifter.observe_parts(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "render",
            false,
        );
    }
    for flag in [true, false, true, false] {
        sifter.observe_parts(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "dispatch",
            flag,
        );
    }
    sifter.commit();
    sifter
}

fn start_server(sifter: Sifter) -> VerdictServer {
    let (writer, _reader) = sifter.into_concurrent();
    VerdictServer::start(
        writer,
        ServerConfig {
            workers: 2,
            // Generous idle timeout: the 512-connection test round-trips
            // sequentially, so the earliest connection legitimately idles
            // for the whole sweep on a slow single-core runner.
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start verdict server")
}

#[test]
fn healthz_and_unknown_routes() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());
    assert_eq!(client.request("GET", "/healthz", None), (200, "ok".into()));
    let (status, body) = client.request("GET", "/v1/nope", None);
    assert_eq!(status, 404);
    assert!(body.contains("no route"));
    // Errors close the connection; reconnect for the 405 golden.
    let mut client = Client::connect(server.local_addr());
    let (status, body) = client.request("DELETE", "/v1/decisions", None);
    assert_eq!(status, 405);
    assert!(body.contains("does not support DELETE"));
    server.shutdown();
}

#[test]
fn decision_endpoint_golden_fixtures() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());

    // Tracking domain: block, decided by the hierarchy at domain level.
    let (status, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"version":1,"decision":{"action":"block","source":"hierarchy","granularity":"Domain"}}"#
    );

    // Functional domain: allow.
    let (status, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"cdn.com","hostname":"a.cdn.com","script":"https://pub.com/ui.js","method":"load"}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"version":1,"decision":{"action":"allow","source":"hierarchy","granularity":"Domain"}}"#
    );

    // Mixed script: surrogate with per-method actions, methods in name
    // order. render (functional) kept, track (tracking) stubbed, dispatch
    // (mixed) guarded.
    let (status, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"hub.com","hostname":"w.hub.com","script":"https://pub.com/mixed.js","method":"dispatch"}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(
        body,
        concat!(
            r#"{"version":1,"decision":{"action":"surrogate","surrogate":{"#,
            r#""script_url":"https://pub.com/mixed.js","#,
            r#""methods":[["dispatch",{"guard":{"blocked_callers":[]}}],["render","keep"],["track","stub"]],"#,
            r#""suppressed_tracking_requests":6,"preserved_functional_requests":8}}}"#
        )
    );

    // Unknown everything, no URL: observe.
    let (status, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"zzz.com","hostname":"a.zzz.com","script":"s.js","method":"m"}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"version":1,"decision":{"action":"observe"}}"#);

    server.shutdown();
}

#[test]
fn rewrite_decision_golden_fixtures() {
    // The trained state restored into a rewriter-enabled sifter: mixed
    // requests whose URLs carry identifier parameters are rewritten.
    let snapshot = trained_sifter().snapshot();
    let sifter = Sifter::builder()
        .rewriter(trackersift::RewriterBuilder::new().default_rules().build())
        .restore(&snapshot)
        .expect("restore with rewriter");
    let server = start_server(sifter);
    let mut client = Client::connect(server.local_addr());

    // Mixed domain, never-seen hostname, URL with gclid + utm_*: rewrite.
    let message = DecisionMessage::new("hub.com", "z.hub.com", "s2.js", "m").with_url(
        "https://z.hub.com/api?id=7&gclid=abc&utm_source=mail",
        "pub.com",
        filterlist::ResourceType::Xhr,
    );
    let (status, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(&message.to_json_value().render()),
    );
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"version":1,"decision":{"action":"rewrite","url":"https://z.hub.com/api?id=7"}}"#
    );

    // The binary codec serves the same rewrite (string-form record; the
    // epoch only gates id-form requests).
    let record = BinaryRecord::from_message(&message);
    let (version, decision) = client.decide_binary_single(0, &record);
    assert_eq!(version, 1);
    match decision {
        Decision::Rewrite(rewritten) => {
            assert_eq!(rewritten.url(), "https://z.hub.com/api?id=7")
        }
        other => panic!("expected a rewrite over the binary codec, got {other}"),
    }

    // A clean URL at the same hierarchy position falls through (no engine
    // configured, so the backstop observes).
    let clean = DecisionMessage::new("hub.com", "z.hub.com", "s2.js", "m").with_url(
        "https://z.hub.com/api?id=7",
        "pub.com",
        filterlist::ResourceType::Xhr,
    );
    let (_, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(&clean.to_json_value().render()),
    );
    assert_eq!(body, r#"{"version":1,"decision":{"action":"observe"}}"#);

    // Batch path: rewrite fragments splice between fixed fragments.
    let batch = format!(
        r#"{{"requests":[{},{}]}}"#,
        r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#,
        message.to_json_value().render()
    );
    let (status, body) = client.request("POST", "/v1/decisions:batch", Some(&batch));
    assert_eq!(status, 200);
    assert_eq!(
        body,
        concat!(
            r#"{"version":1,"decisions":["#,
            r#"{"action":"block","source":"hierarchy","granularity":"Domain"},"#,
            r#"{"action":"rewrite","url":"https://z.hub.com/api?id=7"}]}"#
        )
    );
    server.shutdown();
}

#[test]
fn batch_decisions_share_one_pinned_version() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());
    let body = concat!(
        r#"{"requests":["#,
        r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"},"#,
        r#"{"domain":"zzz.com","hostname":"a.zzz.com","script":"s.js","method":"m"}"#,
        r#"]}"#
    );
    let (status, body) = client.request("POST", "/v1/decisions:batch", Some(body));
    assert_eq!(status, 200);
    assert_eq!(
        body,
        concat!(
            r#"{"version":1,"decisions":["#,
            r#"{"action":"block","source":"hierarchy","granularity":"Domain"},"#,
            r#"{"action":"observe"}]}"#
        )
    );
    server.shutdown();
}

#[test]
fn observations_and_commit_change_served_decisions() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());

    // A brand-new tracking domain, observed over the wire.
    let observations: Vec<String> = (0..5)
        .map(|_| {
            ObservationMessage::Parts {
                domain: "new.com".into(),
                hostname: "px.new.com".into(),
                script: "https://pub.com/n.js".into(),
                method: "fire".into(),
                tracking: true,
            }
            .to_json_value()
            .render()
        })
        .collect();
    let body = format!(r#"{{"observations":[{}]}}"#, observations.join(","));
    let (status, reply) = client.request("POST", "/v1/observations", Some(&body));
    assert_eq!(status, 200);
    assert_eq!(reply, r#"{"accepted":5,"skipped":0,"pending":5}"#);

    // Still unknown until the commit.
    let query = r#"{"domain":"new.com","hostname":"px.new.com","script":"https://pub.com/n.js","method":"fire"}"#;
    let (_, before) = client.request("POST", "/v1/decisions", Some(query));
    assert_eq!(before, r#"{"version":1,"decision":{"action":"observe"}}"#);

    let (status, reply) = client.request("POST", "/v1/commit", None);
    assert_eq!(status, 200);
    assert_eq!(
        reply,
        r#"{"observations":5,"reclassified":{"domains":1,"hostnames":1,"scripts":1,"methods":1},"version":2}"#
    );

    let (_, after) = client.request("POST", "/v1/decisions", Some(query));
    assert_eq!(
        after,
        r#"{"version":2,"decision":{"action":"block","source":"hierarchy","granularity":"Domain"}}"#
    );
    server.shutdown();
}

#[test]
fn stats_reads_the_same_source_of_truth_as_the_core() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());
    // Serve one decision so the worker counters move.
    client.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#),
    );
    let (status, body) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = Value::parse(&body).expect("stats is json");
    assert_eq!(stats.field("version").unwrap().as_u64().unwrap(), 1);
    let ingest = stats.field("ingest").unwrap();
    assert_eq!(ingest.field("observed").unwrap().as_u64().unwrap(), 26);
    assert_eq!(ingest.field("committed").unwrap().as_u64().unwrap(), 26);
    assert_eq!(ingest.field("pending").unwrap().as_u64().unwrap(), 0);
    let resources = stats.field("resources").unwrap();
    assert_eq!(resources.field("domains").unwrap().as_u64().unwrap(), 3);
    // dispatch stays mixed: its 4 requests are the residue.
    assert_eq!(stats.field("unattributed").unwrap().as_u64().unwrap(), 4);
    // Exactly one decision served across the pool so far.
    let workers = stats.field("workers").unwrap().as_array().unwrap();
    let decisions: u64 = workers
        .iter()
        .map(|worker| worker.field("decisions").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(decisions, 1);
    server.shutdown();
}

#[test]
fn snapshot_round_trips_over_the_wire() {
    let sifter = trained_sifter();
    let local_snapshot = sifter.snapshot().to_json_string();
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());

    // Export: byte-identical to the local export of the same state.
    let (status, exported) = client.request("GET", "/v1/snapshot", None);
    assert_eq!(status, 200);
    assert_eq!(exported, local_snapshot);

    // Import it back (a no-op state-wise): published version moves past
    // the old one, never backwards.
    let (status, reply) = client.request("PUT", "/v1/snapshot", Some(&exported));
    assert_eq!(status, 200);
    assert_eq!(
        reply,
        r#"{"restored":true,"version":2,"observations":26,"dropped_pending":0}"#
    );

    // Decisions keep working against the restored state.
    let (_, decision) = client.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#),
    );
    assert_eq!(
        decision,
        r#"{"version":2,"decision":{"action":"block","source":"hierarchy","granularity":"Domain"}}"#
    );

    // A corrupt snapshot is rejected with a typed message and leaves the
    // serving state untouched.
    let corrupt = exported.replace("\"observed\":26", "\"observed\":27");
    let mut fresh = Client::connect(server.local_addr());
    let (status, reply) = fresh.request("PUT", "/v1/snapshot", Some(&corrupt));
    assert_eq!(status, 400);
    assert!(reply.contains("cells sum"), "{reply}");
    let mut fresh = Client::connect(server.local_addr());
    let (_, decision) = fresh.request(
        "POST",
        "/v1/decisions",
        Some(r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#),
    );
    assert!(decision.contains(r#""action":"block""#));
    server.shutdown();
}

#[test]
fn binary_protocol_handshake_and_decisions() {
    let local = trained_sifter();
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());

    // The handshake: every interned key string, index == id.
    let keys = client.fetch_keys();
    assert_eq!(keys.epoch, 0, "fresh server starts at key epoch 0");
    assert_eq!(keys.version, 1);
    assert!(!keys.is_empty());

    // Id-form single request: four u32s on the wire, block decision back.
    let record = BinaryRecord {
        keys: BinaryKeys::Ids {
            domain: keys.id_of("ads.com").expect("interned domain"),
            hostname: keys.id_of("px.ads.com").expect("interned hostname"),
            script: keys.id_of("https://pub.com/a.js").expect("interned script"),
            method: keys.id_of("send").expect("interned method"),
        },
        context: None,
    };
    let (version, decision) = client.decide_binary_single(keys.epoch, &record);
    assert_eq!(version, 1);
    assert_eq!(
        decision,
        local.decide(&DecisionRequest::new(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send"
        ))
    );

    // String-form single request: surrogate payloads (the full method
    // plan) survive the binary framing.
    let surrogate_record = BinaryRecord {
        keys: BinaryKeys::Strings {
            domain: "hub.com",
            hostname: "w.hub.com",
            script: "https://pub.com/mixed.js",
            method: "dispatch",
        },
        context: None,
    };
    let (_, decision) = client.decide_binary_single(keys.epoch, &surrogate_record);
    assert_eq!(
        decision,
        local.decide(&DecisionRequest::new(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "dispatch"
        ))
    );

    // An id the table never handed out is an unknown key, not an error.
    let unknown = BinaryRecord {
        keys: BinaryKeys::Ids {
            domain: u32::MAX,
            hostname: u32::MAX,
            script: u32::MAX,
            method: u32::MAX,
        },
        context: None,
    };
    let (_, decision) = client.decide_binary_single(keys.epoch, &unknown);
    assert_eq!(decision, Decision::Observe);

    // A batch mixes forms freely; one pinned version covers every record.
    let (version, decisions) =
        client.decide_binary_batch(keys.epoch, &[record, surrogate_record, unknown]);
    assert_eq!(version, 1);
    assert_eq!(decisions.len(), 3);
    assert_eq!(decisions[2], Decision::Observe);
    assert!(matches!(decisions[1], Decision::Surrogate(_)));

    // A batch frame on the single endpoint is a client fault, not a serve.
    let batch_frame = wire::encode_binary_batch(keys.epoch, &[unknown]);
    let (status, reply) = client.request_bytes(
        "POST",
        "/v1/decisions",
        Some(wire::BINARY_CONTENT_TYPE),
        &batch_frame,
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&reply).contains("does not match the endpoint"));

    server.shutdown();
}

#[test]
fn stale_key_epoch_is_a_conflict_not_a_wrong_answer() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());
    let stale = client.fetch_keys();
    assert_eq!(stale.epoch, 0);
    let record = BinaryRecord {
        keys: BinaryKeys::Ids {
            domain: stale.id_of("ads.com").expect("interned domain"),
            hostname: stale.id_of("px.ads.com").expect("interned hostname"),
            script: stale
                .id_of("https://pub.com/a.js")
                .expect("interned script"),
            method: stale.id_of("send").expect("interned method"),
        },
        context: None,
    };

    // Restoring a snapshot re-interns every key: old ids now point at
    // arbitrary strings, so the epoch moves and stale ids must bounce.
    let snapshot = trained_sifter().snapshot().to_json_string();
    let (status, _) = client.request("PUT", "/v1/snapshot", Some(&snapshot));
    assert_eq!(status, 200);

    let frame = wire::encode_binary_single(stale.epoch, &record);
    let (status, reply) = client.request_bytes(
        "POST",
        "/v1/decisions",
        Some(wire::BINARY_CONTENT_TYPE),
        &frame,
    );
    assert_eq!(status, 409, "stale epoch must conflict");
    assert!(String::from_utf8_lossy(&reply).contains("re-fetch /v1/keys"));

    // Re-handshake and the same logical request works again. (The 409
    // closed the connection — it is an error response.)
    let mut client = Client::connect(server.local_addr());
    let fresh = client.fetch_keys();
    assert!(fresh.epoch > stale.epoch, "restore must advance the epoch");
    let record = BinaryRecord {
        keys: BinaryKeys::Ids {
            domain: fresh.id_of("ads.com").expect("interned domain"),
            hostname: fresh.id_of("px.ads.com").expect("interned hostname"),
            script: fresh
                .id_of("https://pub.com/a.js")
                .expect("interned script"),
            method: fresh.id_of("send").expect("interned method"),
        },
        context: None,
    };
    let (_, decision) = client.decide_binary_single(fresh.epoch, &record);
    assert!(matches!(decision, Decision::Block(_)));

    // String-form records never depend on the handshake, whatever the
    // epoch byte says.
    let by_name = BinaryRecord {
        keys: BinaryKeys::Strings {
            domain: "ads.com",
            hostname: "px.ads.com",
            script: "https://pub.com/a.js",
            method: "send",
        },
        context: None,
    };
    let (_, decision) = client.decide_binary_single(stale.epoch, &by_name);
    assert!(matches!(decision, Decision::Block(_)));

    server.shutdown();
}

/// The connection-scheduler acceptance check: hundreds of concurrent
/// keep-alive connections are multiplexed by the fixed worker pool, not
/// given a thread each.
#[test]
fn many_keep_alive_connections_without_thread_per_connection() {
    let server = start_server(trained_sifter());
    let mut clients: Vec<Client> = (0..512)
        .map(|_| Client::connect(server.local_addr()))
        .collect();
    // Every connection serves traffic and stays open.
    for client in &mut clients {
        let (status, body) = client.request("GET", "/healthz", None);
        assert_eq!((status, body.as_str()), (200, "ok"));
    }
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").expect("read proc status");
        let threads: usize = status
            .lines()
            .find_map(|line| line.strip_prefix("Threads:"))
            .expect("Threads line")
            .trim()
            .parse()
            .expect("thread count");
        assert!(
            threads < 100,
            "expected a fixed pool, found {threads} threads for 512 connections"
        );
    }
    // The pool still serves a newcomer while all 512 stay connected.
    let mut fresh = Client::connect(server.local_addr());
    let (status, _) = fresh.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    drop(clients);
    server.shutdown();
}

/// Over the connection budget, a fresh socket gets a best-effort `503` +
/// `Retry-After` and is closed — it never joins the poll set.
#[test]
fn overload_sheds_connections_with_retry_after() {
    use std::io::Read;
    let (writer, _reader) = trained_sifter().into_concurrent();
    let server = VerdictServer::start(
        writer,
        ServerConfig {
            workers: 1,
            max_connections: 2,
            retry_after: 3,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start verdict server");

    // Fill the budget with two live connections (the round-trips prove
    // they are accepted and registered, not just queued in the backlog).
    let mut held: Vec<Client> = (0..2)
        .map(|_| Client::connect(server.local_addr()))
        .collect();
    for client in &mut held {
        let (status, _) = client.request("GET", "/healthz", None);
        assert_eq!(status, 200);
    }

    // The third connection is shed at accept: the 503 arrives without the
    // client sending a single byte.
    let mut extra = std::net::TcpStream::connect(server.local_addr()).expect("connect over budget");
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut reply = String::new();
    extra
        .read_to_string(&mut reply)
        .expect("read shed response until close");
    assert!(
        reply.starts_with("HTTP/1.1 503 Service Unavailable"),
        "expected connection shed, got {reply:?}"
    );
    assert!(reply.contains("Retry-After: 3"), "missing hint: {reply:?}");
    assert!(
        reply.contains(r#""retry_after":3"#),
        "missing body hint: {reply:?}"
    );

    // Releasing budget restores admission — once the worker has reaped
    // the closed sockets (it learns of the EOFs a poll cycle later).
    drop(held);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut fresh = Client::connect(server.local_addr());
        let (status, _) = fresh.request("GET", "/healthz", None);
        if status == 200 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "connection budget never released after the holders closed"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
}

/// Over the in-flight budget, a request is answered `503` in its own
/// protocol — JSON body or binary shed frame — and the connection stays
/// usable; a `RetryingClient` honors the hint and gives up within budget.
#[test]
fn overload_sheds_requests_but_keeps_the_connection() {
    let (writer, _reader) = trained_sifter().into_concurrent();
    let server = VerdictServer::start(
        writer,
        ServerConfig {
            workers: 1,
            // A zero budget sheds every request — the deterministic way to
            // exercise the shed path without a load generator.
            max_inflight: 0,
            retry_after: 2,
            ..ServerConfig::ephemeral()
        },
    )
    .expect("start verdict server");
    let mut client = Client::connect(server.local_addr());

    let query = r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#;
    let (status, body) = client.request("POST", "/v1/decisions", Some(query));
    assert_eq!(status, 503);
    assert!(body.contains(r#""retry_after":2"#), "shed body: {body}");

    // Same connection, next request: still alive, still shedding.
    let (status, _) = client.request("GET", "/healthz", None);
    assert_eq!(status, 503);

    // The binary protocol sheds with a binary frame, not a JSON body.
    let record = BinaryRecord {
        keys: BinaryKeys::Strings {
            domain: "ads.com",
            hostname: "px.ads.com",
            script: "https://pub.com/a.js",
            method: "send",
        },
        context: None,
    };
    let frame = wire::encode_binary_single(0, &record);
    let (status, body) = client.request_bytes(
        "POST",
        "/v1/decisions",
        Some(wire::BINARY_CONTENT_TYPE),
        &frame,
    );
    assert_eq!(status, 503);
    assert_eq!(
        wire::decode_binary_shed(&body).expect("binary shed frame"),
        2
    );

    // A retrying client backs off per the Retry-After hint (capped by its
    // policy), then hands back the final shed response instead of storming.
    let mut retrying = RetryingClient::new(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
    );
    let response = retrying
        .request("GET", "/healthz", None, b"")
        .expect("transport stayed healthy");
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after, Some(2));
    assert_eq!(retrying.retries_spent(), 2, "retried up to max_attempts");
    server.shutdown();
}

/// Shutdown is graceful: a request already on the wire when the stop flag
/// lands is parsed to completion, served, and flushed before the
/// connection closes.
#[test]
fn graceful_shutdown_drains_inflight_requests() {
    use std::io::{Read, Write};
    let server = start_server(trained_sifter());
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    // Send the head and half the body, so the request is mid-parse…
    let body = r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#;
    let head = format!(
        "POST /v1/decisions HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream
        .write_all(&body.as_bytes()[..20])
        .expect("send partial body");
    std::thread::sleep(Duration::from_millis(100));

    // …start the shutdown with the request still incomplete…
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(150));

    // …and finish it during the drain window. The full response must
    // still come back before the socket closes.
    stream
        .write_all(&body.as_bytes()[20..])
        .expect("send the rest during drain");
    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .expect("read the drained response until close");
    assert!(
        reply.starts_with("HTTP/1.1 200 OK"),
        "expected the in-flight request to be served, got {reply:?}"
    );
    assert!(reply.contains(r#""action":"block""#), "got {reply:?}");
    shutdown.join().expect("shutdown thread");
}

/// `GET /v1/stats` exposes the admission budgets, live gauges, and
/// self-healing counters alongside the per-worker serving counters.
#[test]
fn stats_exposes_admission_budgets_and_worker_health() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());
    let (status, body) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = Value::parse(&body).expect("stats json");
    let admission = stats.field("admission").expect("admission object");
    let field = |name: &str| {
        admission
            .field(name)
            .and_then(|value| value.as_u64())
            .unwrap_or_else(|error| panic!("admission.{name}: {error}"))
    };
    assert_eq!(field("max_connections"), 1024);
    assert_eq!(field("max_inflight"), 256);
    assert_eq!(field("active_connections"), 1, "this client is connected");
    assert_eq!(field("worker_restarts"), 0);
    assert_eq!(field("shed_connections"), 0);
    assert_eq!(field("shed_requests"), 0);
    let workers = stats
        .field("workers")
        .and_then(|workers| workers.as_array())
        .expect("workers array");
    for worker in workers {
        assert_eq!(
            worker
                .field("restarts")
                .and_then(|v| v.as_u64())
                .expect("worker restarts"),
            0,
            "healthy workers report zero restarts"
        );
    }
    // No durability configured → no durability section.
    assert!(stats.field("durability").is_err());
    server.shutdown();
}

/// The crash-recovery loop over the wire: observations committed against a
/// durable server survive a full stop/start cycle on the same directory,
/// and the reboot's recovery report is visible in `/v1/stats`.
#[test]
fn durable_server_recovers_observations_after_restart() {
    let dir = std::env::temp_dir().join(format!(
        "trackersift-server-durable-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let config = |dir: &std::path::Path| ServerConfig {
        workers: 1,
        durability: Some(DurabilityConfig::new(dir)),
        ..ServerConfig::ephemeral()
    };

    // First life: an untrained server learns one domain over the wire.
    let (writer, _reader) = Sifter::builder().build_concurrent();
    let server = VerdictServer::start(writer, config(&dir)).expect("first boot");
    assert_eq!(
        server.recovery().expect("durable boot").replayed_records,
        0,
        "nothing to recover on a fresh directory"
    );
    let mut client = Client::connect(server.local_addr());
    let observations: Vec<String> = (0..5)
        .map(|_| {
            ObservationMessage::Parts {
                domain: "ads.com".into(),
                hostname: "px.ads.com".into(),
                script: "https://pub.com/a.js".into(),
                method: "send".into(),
                tracking: true,
            }
            .to_json_value()
            .render()
        })
        .collect();
    let body = format!(r#"{{"observations":[{}]}}"#, observations.join(","));
    let (status, _) = client.request("POST", "/v1/observations", Some(&body));
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/v1/commit", None);
    assert_eq!(status, 200);
    drop(client);
    server.shutdown();

    // Second life: a *fresh, untrained* writer on the same directory. The
    // journal replay must hand back the learned verdict before the first
    // request is served.
    let (writer, _reader) = Sifter::builder().build_concurrent();
    let server = VerdictServer::start(writer, config(&dir)).expect("second boot");
    let report = server.recovery().expect("durable boot");
    assert_eq!(report.replayed_commits, 1);
    assert_eq!(
        report.replayed_records, 7,
        "5 observations + 1 marker + 1 revision"
    );
    let mut client = Client::connect(server.local_addr());
    let query = r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#;
    let (status, decision) = client.request("POST", "/v1/decisions", Some(query));
    assert_eq!(status, 200);
    assert!(
        decision.contains(r#""action":"block""#),
        "recovered verdict: {decision}"
    );

    // The durability section of /v1/stats tells the same recovery story.
    let (status, body) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = Value::parse(&body).expect("stats json");
    let durability = stats.field("durability").expect("durability object");
    assert_eq!(
        durability
            .field("generation")
            .and_then(|v| v.as_u64())
            .expect("generation"),
        0
    );
    let recovery = durability.field("recovery").expect("recovery object");
    assert_eq!(
        recovery
            .field("replayed_records")
            .and_then(|v| v.as_u64())
            .expect("replayed_records"),
        7
    );
    assert_eq!(
        recovery
            .field("torn_bytes")
            .and_then(|v| v.as_u64())
            .expect("torn_bytes"),
        0
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A minimal in-test scheduler: each tick learns one fresh tracking chain
/// and commits, so version and drift advance deterministically without
/// pulling the real `scheduler` crate into this crate's dev-dependencies.
struct CountingScheduler {
    ticks: u64,
}

impl trackersift_server::SchedulerDriver for CountingScheduler {
    fn tick(&mut self, writer: &mut trackersift::SifterWriter) -> trackersift_server::TickSummary {
        let epoch = self.ticks;
        self.ticks += 1;
        for _ in 0..5 {
            writer.observe_parts(
                &format!("t{epoch}.com"),
                &format!("px.t{epoch}.com"),
                &format!("https://pub.com/t{epoch}.js"),
                &format!("fire{epoch}"),
                true,
            );
        }
        writer.commit();
        let version = writer.published_version();
        let drift_events = writer
            .revisions()
            .last()
            .map_or(0, |revision| revision.changes().len() as u64);
        trackersift_server::TickSummary {
            epoch,
            observations: 5,
            drift_events,
            version,
        }
    }

    fn stats(&self) -> trackersift_server::SchedulerStats {
        trackersift_server::SchedulerStats {
            epoch: self.ticks.saturating_sub(1),
            ticks: self.ticks,
            rotated_cdn_scripts: 5,
            rotated_paths: 2,
            emerged_pixels: 1,
            drift_events: 4 * self.ticks,
            retention_probes: 4,
            retention_hits: 3,
        }
    }
}

/// `GET /v1/revisions` serves the writer's revision ring — and its drift
/// diffs — byte-identical to the in-process encodings, in both the JSON
/// and the `Accept`-negotiated binary framing.
#[test]
fn revisions_endpoint_matches_in_process_ring() {
    use trackersift::frames;

    // The in-process twin: same training, then the same observations the
    // wire side will ingest.
    let (mut local, _local_reader) = trained_sifter().into_concurrent();
    for _ in 0..5 {
        local.observe_parts(
            "new.com",
            "px.new.com",
            "https://pub.com/n.js",
            "fire",
            true,
        );
    }
    local.commit();

    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());

    // Training happened before the concurrent split, so the ring starts
    // empty at version 1.
    let (status, body) = client.request("GET", "/v1/revisions", None);
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"version":1,"revisions":[]}"#);

    // Ingest the same chain over the wire and commit.
    let observations: Vec<String> = (0..5)
        .map(|_| {
            ObservationMessage::Parts {
                domain: "new.com".into(),
                hostname: "px.new.com".into(),
                script: "https://pub.com/n.js".into(),
                method: "fire".into(),
                tracking: true,
            }
            .to_json_value()
            .render()
        })
        .collect();
    let body = format!(r#"{{"observations":[{}]}}"#, observations.join(","));
    let (status, _) = client.request("POST", "/v1/observations", Some(&body));
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/v1/commit", None);
    assert_eq!(status, 200);

    // The served ring equals the in-process encoding byte for byte.
    let (status, body) = client.request("GET", "/v1/revisions", None);
    assert_eq!(status, 200);
    let expected =
        frames::revision_list_value(local.published_version(), local.revisions()).render();
    assert_eq!(body, expected);
    assert!(
        body.contains(r#""key":"new.com","added":"tracking""#),
        "{body}"
    );

    // The drift diff folds the same changes the local ring folds.
    let local_diff = trackersift::diff_revisions(local.revisions(), 1, 2).expect("local diff");
    let (status, body) = client.request("GET", "/v1/revisions?diff=1..2", None);
    assert_eq!(status, 200);
    assert_eq!(body, frames::revision_diff_value(&local_diff).render());

    // An empty range is legal and empty.
    let (status, body) = client.request("GET", "/v1/revisions?diff=2..2", None);
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"from":2,"to":2,"changes":[]}"#);

    // The binary framing carries the same ring and diff.
    let (version, revisions) = client.fetch_revisions_binary().expect("binary ring");
    assert_eq!(version, local.published_version());
    let shared: Vec<_> = revisions.into_iter().map(std::sync::Arc::new).collect();
    assert_eq!(
        frames::encode_revision_list(version, &shared),
        frames::encode_revision_list(local.published_version(), local.revisions())
    );
    let diff = client
        .fetch_revision_diff_binary(1, 2)
        .expect("binary diff");
    assert_eq!(diff, local_diff);

    // The typed client fetch agrees with the raw body.
    let (version, revisions) = client.fetch_revisions().expect("typed fetch");
    assert_eq!(version, 2);
    assert_eq!(revisions.len(), 1);
    assert_eq!(revisions[0].version(), 2);

    server.shutdown();
}

/// Hostile revision queries get typed 4xx answers: inverted ranges 400,
/// ranges outside the bounded ring 404, garbage query strings 400 — and
/// the method table still answers 405 for non-GET.
#[test]
fn revisions_endpoint_rejects_hostile_ranges() {
    let server = start_server(trained_sifter());

    // Commit once over the wire so the ring holds version 2.
    let mut client = Client::connect(server.local_addr());
    let body = format!(
        r#"{{"observations":[{}]}}"#,
        ObservationMessage::Parts {
            domain: "new.com".into(),
            hostname: "px.new.com".into(),
            script: "https://pub.com/n.js".into(),
            method: "fire".into(),
            tracking: true,
        }
        .to_json_value()
        .render()
    );
    client.request("POST", "/v1/observations", Some(&body));
    client.request("POST", "/v1/commit", None);

    // Errors close the connection, so each case reconnects.
    let cases: [(&str, u16, &str); 7] = [
        ("/v1/revisions?diff=2..1", 400, "inverted revision range"),
        ("/v1/revisions?diff=0..9", 404, "not in the revision ring"),
        ("/v1/revisions?diff=5..9", 404, "not in the revision ring"),
        ("/v1/revisions?diff=abc", 400, "not of the form a..b"),
        ("/v1/revisions?diff=1..2&diff=1..2", 400, "duplicate"),
        (
            "/v1/revisions?granularity=Script",
            400,
            "unknown query parameter",
        ),
        ("/v1/revisions?", 400, "malformed query parameter"),
    ];
    for (target, expected_status, needle) in cases {
        let mut client = Client::connect(server.local_addr());
        let (status, body) = client.request("GET", target, None);
        assert_eq!(status, expected_status, "{target}: {body}");
        assert!(body.contains(needle), "{target}: {body}");
    }

    // The typed client surfaces the same statuses.
    let mut client = Client::connect(server.local_addr());
    match client.fetch_revision_diff(2, 1) {
        Err(trackersift_server::client::RevisionFetchError::Status(400, detail)) => {
            assert!(detail.contains("inverted"), "{detail}")
        }
        other => panic!("expected a 400, got {other:?}"),
    }

    // Non-GET methods on the revisions target — query string included —
    // are 405, not 404.
    for target in ["/v1/revisions", "/v1/revisions?diff=1..2"] {
        let mut client = Client::connect(server.local_addr());
        let (status, body) = client.request("DELETE", target, None);
        assert_eq!(status, 405, "{target}: {body}");
    }
    server.shutdown();
}

/// `POST /v1/tick` drives an attached `SchedulerDriver` on the admin
/// thread, `GET /v1/stats` grows a `scheduler` section, and a server
/// without a scheduler answers 400.
#[test]
fn tick_endpoint_drives_the_attached_scheduler() {
    let (writer, _reader) = trained_sifter().into_concurrent();
    let server = VerdictServer::start_with_scheduler(
        writer,
        ServerConfig {
            workers: 2,
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::ephemeral()
        },
        Box::new(CountingScheduler { ticks: 0 }),
    )
    .expect("start verdict server with scheduler");
    let mut client = Client::connect(server.local_addr());

    // Each tick commits one fresh pure-tracking chain: the hierarchy
    // decides it at domain granularity, so exactly one class flips.
    let (status, body) = client.request("POST", "/v1/tick", None);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"epoch":0,"observations":5,"drift_events":1,"version":2}"#
    );
    let (status, body) = client.request("POST", "/v1/tick", None);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        r#"{"epoch":1,"observations":5,"drift_events":1,"version":3}"#
    );

    // The tick's drift is now diffable over the wire.
    let (status, body) = client.request("GET", "/v1/revisions?diff=2..3", None);
    assert_eq!(status, 200);
    assert!(
        body.contains(r#""key":"t1.com","added":"tracking""#),
        "{body}"
    );

    // The stats section reports the driver's cumulative gauges plus the
    // measured tick duration.
    let (status, body) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = Value::parse(&body).expect("stats json");
    let scheduler = stats.field("scheduler").expect("scheduler section");
    let field = |name: &str| {
        scheduler
            .field(name)
            .and_then(|value| value.as_u64())
            .unwrap_or_else(|error| panic!("scheduler.{name}: {error}"))
    };
    assert_eq!(field("epoch"), 1);
    assert_eq!(field("ticks"), 2);
    assert_eq!(field("rotated_cdn_scripts"), 5);
    assert_eq!(field("rotated_paths"), 2);
    assert_eq!(field("emerged_pixels"), 1);
    assert_eq!(field("drift_events"), 8);
    let retention = scheduler.field("retention").expect("retention object");
    assert_eq!(retention.field("probes").unwrap().as_u64().unwrap(), 4);
    assert_eq!(retention.field("hits").unwrap().as_u64().unwrap(), 3);
    // The duration gauge is measured, not golden — it just has to exist.
    let _ = field("last_tick_micros");

    // A scheduler-less server refuses the tick with a typed 400 and no
    // scheduler stats section.
    let plain = start_server(trained_sifter());
    let mut client = Client::connect(plain.local_addr());
    let (status, body) = client.request("POST", "/v1/tick", None);
    assert_eq!(status, 400);
    assert!(body.contains("no scheduler attached"), "{body}");
    let mut client = Client::connect(plain.local_addr());
    let (_, body) = client.request("GET", "/v1/stats", None);
    let stats = Value::parse(&body).expect("stats json");
    assert!(stats.field("scheduler").is_err());
    plain.shutdown();
    server.shutdown();
}

/// Deterministic observation tuples from a splitmix-style stream.
fn observations(count: usize, mut seed: u64) -> Vec<(String, String, String, String, bool)> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let r = next();
            let domain = r % 4;
            let host = (r >> 8) % 3;
            let script = (r >> 16) % 4;
            let method = (r >> 24) % 3;
            (
                format!("d{domain}.com"),
                format!("h{host}.d{domain}.com"),
                format!("https://pub.com/s{script}.js"),
                format!("m{method}"),
                (r >> 32) & 1 == 1,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: for the same snapshot, the decision served
    /// over the wire — serialize → server → deserialize — equals the
    /// in-process `Sifter` decision byte for byte, surrogate payloads for
    /// mixed scripts included. Exercises `PUT /v1/snapshot` as the state
    /// transfer.
    #[test]
    fn wire_decisions_are_byte_identical_to_in_process(
        count in 20usize..160,
        seed in 0u64..1_000_000,
        threshold in 0.7f64..2.5,
    ) {
        // Local side: train, snapshot, restore — the in-process truth.
        let mut trained = Sifter::builder()
            .thresholds(trackersift::Thresholds::new(threshold))
            .build();
        let stream = observations(count, seed);
        for (domain, hostname, script, method, tracking) in &stream {
            trained.observe_parts(domain, hostname, script, method, *tracking);
        }
        trained.commit();
        let snapshot = trained.snapshot();
        // Both sides carry the same default rewriter, so the decision space
        // the probes sweep includes `rewrite` (URL-context probes against
        // mixed resources).
        let local = Sifter::builder()
            .rewriter(trackersift::RewriterBuilder::new().default_rules().build())
            .restore(&snapshot)
            .expect("restore locally");

        // Server side: one shared server (kept alive across proptest
        // cases; each case transfers its own state via PUT /v1/snapshot —
        // the rewriter is serving configuration, kept across restores).
        static SERVER: std::sync::OnceLock<VerdictServer> = std::sync::OnceLock::new();
        let server = SERVER.get_or_init(|| {
            let (writer, _reader) = Sifter::builder()
                .rewriter(trackersift::RewriterBuilder::new().default_rules().build())
                .build_concurrent();
            VerdictServer::start(
                writer,
                ServerConfig {
                    workers: 2,
                    read_timeout: Duration::from_secs(2),
                    ..ServerConfig::ephemeral()
                },
            ).expect("start server")
        });
        let mut client = Client::connect(server.local_addr());
        let (status, _) = client.request("PUT", "/v1/snapshot", Some(&snapshot.to_json_string()));
        prop_assert_eq!(status, 200);
        // Binary handshake against the state this case just transferred
        // (every restore advances the key epoch, so re-fetch per case).
        let keys = client.fetch_keys();

        // Every attribution tuple the pools can produce, plus unknowns.
        for domain in 0..5u64 {
            for host in 0..3u64 {
                for script in 0..4u64 {
                    for method in 0..3u64 {
                        let mut message = DecisionMessage::new(
                            &format!("d{domain}.com"),
                            &format!("h{host}.d{domain}.com"),
                            &format!("https://pub.com/s{script}.js"),
                            &format!("m{method}"),
                        );
                        // Every other probe carries a URL with identifier
                        // parameters, so mixed tuples land in the rewrite
                        // arm and the sweep covers all five actions.
                        if (domain + host + script + method) % 2 == 1 {
                            message = message.with_url(
                                &format!(
                                    "https://h{host}.d{domain}.com/t?id={script}&fbclid=f{}&utm_medium=wire",
                                    seed % 7
                                ),
                                "pub.com",
                                filterlist::ResourceType::Xhr,
                            );
                        }
                        let (status, body) = client.request(
                            "POST",
                            "/v1/decisions",
                            Some(&message.to_json_value().render()),
                        );
                        prop_assert_eq!(status, 200);
                        let reply = Value::parse(&body).expect("decision reply is json");
                        let served = reply.field("decision").expect("decision field");
                        let expected = local.decide(&message.as_request());
                        // Byte-identical: the served JSON re-renders to the
                        // canonical encoding of the local decision...
                        prop_assert_eq!(
                            served.render(),
                            wire::decision_to_json(&expected).render()
                        );
                        // ...and deserialises back to an equal Decision.
                        let decoded = wire::decision_from_json(served).expect("decode decision");
                        prop_assert_eq!(&decoded, &expected);

                        // The binary codec agrees too, in both key forms.
                        // String form first:
                        let by_name = BinaryRecord::from_message(&message);
                        let (_, decoded) = client.decide_binary_single(keys.epoch, &by_name);
                        prop_assert_eq!(&decoded, &expected);
                        // ...then id form (same URL context), with
                        // uninterned strings mapped to an id the table
                        // never issued (same semantics as an unknown
                        // string).
                        let by_id = BinaryRecord {
                            keys: BinaryKeys::Ids {
                                domain: keys.id_of(&message.domain).unwrap_or(u32::MAX),
                                hostname: keys.id_of(&message.hostname).unwrap_or(u32::MAX),
                                script: keys.id_of(&message.script).unwrap_or(u32::MAX),
                                method: keys.id_of(&message.method).unwrap_or(u32::MAX),
                            },
                            context: by_name.context,
                        };
                        let (_, decoded) = client.decide_binary_single(keys.epoch, &by_id);
                        prop_assert_eq!(&decoded, &expected);
                    }
                }
            }
        }
        // The shared server is intentionally left running for later cases;
        // the test process tears it down on exit.
    }
}

#[test]
fn delta_snapshot_endpoint_contract() {
    let server = start_server(trained_sifter());
    let mut client = Client::connect(server.local_addr());

    // A server whose table was trained before `into_concurrent` has an
    // empty revision ring: any `?since=` span is unanswerable, and the
    // typed fallback is `410 Gone` carrying a *full* snapshot.
    let (status, body) = client.request("GET", "/v1/snapshot?since=0", None);
    assert_eq!(status, 410);
    assert!(body.contains(r#""kind":"full""#), "{body}");

    // One observed + committed epoch puts version 2 in the ring, so the
    // span 1 -> 2 is servable as a delta.
    let (status, _) = client.request(
        "POST",
        "/v1/observations",
        Some(
            r#"{"observations":[{"domain":"new.com","hostname":"p.new.com","script":"https://new.com/n.js","method":"emit","tracking":true}]}"#,
        ),
    );
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/v1/commit", None);
    assert_eq!(status, 200);
    let (status, body) = client.request("GET", "/v1/snapshot?since=1", None);
    assert_eq!(status, 200);
    assert!(body.contains(r#""kind":"delta""#), "{body}");
    assert!(body.contains(r#""from":1"#), "{body}");
    assert!(body.contains(r#""to":2"#), "{body}");

    // The typed client accepts both 200 (delta) and 410 (full) as data, in
    // JSON and binary framing alike.
    let delta = client.fetch_snapshot_since(1).expect("JSON delta");
    assert_eq!(delta.since, Some(1));
    assert_eq!(delta.to, 2);
    let binary = client.fetch_snapshot_since_binary(1).expect("binary delta");
    assert_eq!(binary.since, Some(1));
    assert_eq!(binary.changes.len(), delta.changes.len());
    let full = client.fetch_snapshot_since(0).expect("aged span -> full");
    assert_eq!(full.since, None);
    assert_eq!(full.to, 2);

    // An inverted span (a follower from the future) is a client error,
    // and so is a malformed query. Errors close the connection.
    let mut client = Client::connect(server.local_addr());
    let (status, body) = client.request("GET", "/v1/snapshot?since=99", None);
    assert_eq!(status, 400);
    assert!(body.contains("inverted"), "{body}");
    let mut client = Client::connect(server.local_addr());
    let (status, _) = client.request("GET", "/v1/snapshot?since=abc", None);
    assert_eq!(status, 400);
    let mut client = Client::connect(server.local_addr());
    let (status, _) = client.request("GET", "/v1/snapshot?bogus=1", None);
    assert_eq!(status, 400);

    server.shutdown();
}
