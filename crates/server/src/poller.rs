//! Dependency-free socket readiness polling for the connection scheduler.
//!
//! The verdict server multiplexes hundreds of keep-alive connections per
//! worker thread, so it needs *readiness* ("which sockets have bytes / have
//! write space?") without parking a thread per socket. The std library
//! exposes no readiness API, and the no-new-dependencies rule rules out
//! `mio`/`polling`, so this module binds `poll(2)` directly with a
//! one-function `extern "C"` declaration — the oldest, most portable
//! readiness syscall, present on every unix.
//!
//! Design notes:
//!
//! * **Level-triggered.** `poll(2)` reports a socket readable for as long
//!   as bytes are buffered, so the event loop never needs to drain a
//!   socket to exhaustion in one pass to stay correct — it reads once per
//!   wakeup and gets woken again if more is pending.
//! * **Rebuilt set per wait.** The interest set is re-registered before
//!   every wait. With the O(n) `poll` interface there is nothing to gain
//!   from incremental registration, and rebuilding makes the scheduler's
//!   state trivially consistent (no stale-fd bugs on connection close).
//! * **Non-unix fallback.** On platforms without `poll(2)` the poller
//!   reports every registered socket ready after a ~1 ms nap. Combined
//!   with nonblocking sockets (every read/write handles `WouldBlock`)
//!   that degrades to short-sleep busy-polling — correct, just not as
//!   efficient; the serving targets are linux hosts.

use std::io;

#[cfg(unix)]
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `nfds_t`: `unsigned long` on linux, `unsigned int` on the BSDs and
    /// macOS.
    #[cfg(target_os = "linux")]
    pub type NfdsT = usize;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = u32;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }
}

/// Anything with a pollable OS socket handle.
pub trait Pollable {
    /// The raw file descriptor to poll.
    fn raw_fd(&self) -> i32;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Pollable for T {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> Pollable for T {
    fn raw_fd(&self) -> i32 {
        -1
    }
}

/// A reusable readiness-poll set: register interests, [`wait`](Poller::wait)
/// once, then query per-slot readiness. One instance per worker thread,
/// cleared and re-registered every loop iteration.
#[derive(Debug, Default)]
pub struct Poller {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
    #[cfg(not(unix))]
    registered: usize,
}

impl Poller {
    /// An empty poll set.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Drop all registered interests (start of a scheduler iteration).
    pub fn clear(&mut self) {
        #[cfg(unix)]
        self.fds.clear();
        #[cfg(not(unix))]
        {
            self.registered = 0;
        }
    }

    /// Register a socket with the given interests; returns the slot to
    /// query after [`wait`](Poller::wait). Slots are assigned densely in
    /// registration order.
    pub fn register(&mut self, socket: &impl Pollable, readable: bool, writable: bool) -> usize {
        #[cfg(unix)]
        {
            let mut events = 0i16;
            if readable {
                events |= sys::POLLIN;
            }
            if writable {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd: socket.raw_fd(),
                events,
                revents: 0,
            });
            self.fds.len() - 1
        }
        #[cfg(not(unix))]
        {
            let _ = (socket, readable, writable);
            self.registered += 1;
            self.registered - 1
        }
    }

    /// Block until at least one registered socket is ready or the timeout
    /// (milliseconds; `0` returns immediately) elapses. Returns how many
    /// slots have events. A signal interruption counts as "nothing ready".
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<usize> {
        // The `poller.wait` failpoint injects poll(2) failures (the worker
        // event loop must nap + rebuild, never wedge or spin).
        trackersift::failpoint::check_io("poller.wait")?;
        #[cfg(unix)]
        {
            if self.fds.is_empty() {
                if timeout_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                }
                return Ok(0);
            }
            let ready = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as sys::NfdsT,
                    timeout_ms,
                )
            };
            if ready < 0 {
                let error = io::Error::last_os_error();
                return if error.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(error)
                };
            }
            Ok(ready as usize)
        }
        #[cfg(not(unix))]
        {
            // Everything is "ready"; nonblocking I/O turns spurious
            // readiness into WouldBlock. Nap briefly to avoid a hot spin.
            if timeout_ms != 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(self.registered)
        }
    }

    /// Whether the slot's socket is readable (or has an error/hangup to
    /// observe — reading is how those are surfaced).
    pub fn readable(&self, slot: usize) -> bool {
        #[cfg(unix)]
        {
            self.fds[slot].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                != 0
        }
        #[cfg(not(unix))]
        {
            slot < self.registered
        }
    }

    /// Whether the slot's socket has write space (or a pending error).
    pub fn writable(&self, slot: usize) -> bool {
        #[cfg(unix)]
        {
            self.fds[slot].revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL)
                != 0
        }
        #[cfg(not(unix))]
        {
            slot < self.registered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn listener_becomes_readable_on_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new();

        poller.clear();
        let slot = poller.register(&listener, true, false);
        assert_eq!(poller.wait(0).expect("poll"), 0, "no connection pending");
        let _ = slot;

        let _client = TcpStream::connect(addr).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.clear();
            let slot = poller.register(&listener, true, false);
            if poller.wait(100).expect("poll") > 0 && poller.readable(slot) {
                break;
            }
            assert!(Instant::now() < deadline, "listener never became readable");
        }
    }

    #[test]
    fn connected_stream_reports_write_space_and_pending_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");

        let mut poller = Poller::new();
        poller.clear();
        let write_slot = poller.register(&client, false, true);
        assert!(poller.wait(1000).expect("poll") > 0);
        assert!(poller.writable(write_slot), "fresh socket has write space");

        client.write_all(b"ping").expect("write");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.clear();
            let read_slot = poller.register(&server_side, true, false);
            if poller.wait(100).expect("poll") > 0 && poller.readable(read_slot) {
                break;
            }
            assert!(Instant::now() < deadline, "bytes never became readable");
        }
    }
}
