//! The JSON wire format of the verdict server, over the dependency-free
//! [`crawler::json`] codec.
//!
//! Every type here encodes and decodes symmetrically, so a client can
//! round-trip what the server sends — the property the wire tests pin down
//! byte for byte: a [`Decision`] rendered here, shipped over HTTP, and
//! decoded back equals the in-process decision exactly, surrogate payload
//! included.

use crawler::json::{object, JsonError, Value};
use filterlist::ResourceType;
use std::sync::Arc;
use trackersift::{
    CommitStats, Decision, DecisionRequest, DecisionSource, Granularity, MethodAction,
    ServiceStats, SurrogateScript,
};

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(message.into()))
}

fn as_bool(value: &Value) -> Result<bool, JsonError> {
    match value {
        Value::Bool(flag) => Ok(*flag),
        other => err(format!("expected bool, got {other:?}")),
    }
}

fn string_field(value: &Value, key: &str) -> Result<String, JsonError> {
    Ok(value.field(key)?.as_str()?.to_string())
}

/// Parse a resource type from its canonical filter-list option name
/// (`script`, `image`, `xmlhttprequest`, …).
pub fn resource_type_from_str(name: &str) -> Result<ResourceType, JsonError> {
    ResourceType::ALL
        .into_iter()
        .find(|kind| kind.option_name() == name)
        .ok_or_else(|| JsonError(format!("unknown resource type {name:?}")))
}

fn granularity_from_str(name: &str) -> Result<Granularity, JsonError> {
    Granularity::ALL
        .into_iter()
        .find(|granularity| granularity.name() == name)
        .ok_or_else(|| JsonError(format!("unknown granularity {name:?}")))
}

/// An owned decision query as it travels over the wire; borrow it into a
/// [`DecisionRequest`] with [`DecisionMessage::as_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionMessage {
    /// Registrable domain of the request URL.
    pub domain: String,
    /// Full hostname of the request URL.
    pub hostname: String,
    /// URL of the initiating script.
    pub script: String,
    /// Method name of the initiating frame.
    pub method: String,
    /// Raw request URL (enables the filter-list backstop), if sent.
    pub url: Option<String>,
    /// Hostname of the page issuing the request (only with `url`).
    pub source_hostname: String,
    /// Resource type (only meaningful with `url`).
    pub resource_type: ResourceType,
}

impl DecisionMessage {
    /// A keys-only query.
    pub fn new(domain: &str, hostname: &str, script: &str, method: &str) -> Self {
        DecisionMessage {
            domain: domain.to_string(),
            hostname: hostname.to_string(),
            script: script.to_string(),
            method: method.to_string(),
            url: None,
            source_hostname: String::new(),
            resource_type: ResourceType::Other,
        }
    }

    /// Attach raw-URL context for the filter-list backstop.
    pub fn with_url(
        mut self,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
    ) -> Self {
        self.url = Some(url.to_string());
        self.source_hostname = source_hostname.to_string();
        self.resource_type = resource_type;
        self
    }

    /// Borrow as the core decision query.
    pub fn as_request(&self) -> DecisionRequest<'_> {
        let request =
            DecisionRequest::new(&self.domain, &self.hostname, &self.script, &self.method);
        match &self.url {
            Some(url) => request.with_url(url, &self.source_hostname, self.resource_type),
            None => request,
        }
    }

    /// Encode for the `POST /v1/decisions` body.
    pub fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("domain", Value::String(self.domain.clone())),
            ("hostname", Value::String(self.hostname.clone())),
            ("script", Value::String(self.script.clone())),
            ("method", Value::String(self.method.clone())),
        ];
        if let Some(url) = &self.url {
            fields.push(("url", Value::String(url.clone())));
            fields.push((
                "source_hostname",
                Value::String(self.source_hostname.clone()),
            ));
            fields.push((
                "resource_type",
                Value::String(self.resource_type.option_name().to_string()),
            ));
        }
        object(fields)
    }

    /// Decode from a request body value.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let mut message = DecisionMessage::new(
            value.field("domain")?.as_str()?,
            value.field("hostname")?.as_str()?,
            value.field("script")?.as_str()?,
            value.field("method")?.as_str()?,
        );
        if let Some(url) = value.get("url") {
            message.url = Some(url.as_str()?.to_string());
            message.source_hostname = match value.get("source_hostname") {
                Some(host) => host.as_str()?.to_string(),
                None => String::new(),
            };
            message.resource_type = match value.get("resource_type") {
                Some(kind) => resource_type_from_str(kind.as_str()?)?,
                None => ResourceType::Other,
            };
        }
        Ok(message)
    }
}

fn source_fields(source: DecisionSource, fields: &mut Vec<(&'static str, Value)>) {
    match source {
        DecisionSource::Hierarchy(granularity) => {
            fields.push(("source", Value::String("hierarchy".to_string())));
            fields.push(("granularity", Value::String(granularity.name().to_string())));
        }
        DecisionSource::FilterList => {
            fields.push(("source", Value::String("filter-list".to_string())));
        }
    }
}

fn source_from_json(value: &Value) -> Result<DecisionSource, JsonError> {
    match value.field("source")?.as_str()? {
        "hierarchy" => Ok(DecisionSource::Hierarchy(granularity_from_str(
            value.field("granularity")?.as_str()?,
        )?)),
        "filter-list" => Ok(DecisionSource::FilterList),
        other => err(format!("unknown decision source {other:?}")),
    }
}

fn method_action_to_json(action: &MethodAction) -> Value {
    match action {
        MethodAction::Keep => Value::String("keep".to_string()),
        MethodAction::Stub => Value::String("stub".to_string()),
        MethodAction::Guard { blocked_callers } => object(vec![(
            "guard",
            object(vec![(
                "blocked_callers",
                Value::Array(
                    blocked_callers
                        .iter()
                        .map(|caller| Value::String(caller.clone()))
                        .collect(),
                ),
            )]),
        )]),
    }
}

fn method_action_from_json(value: &Value) -> Result<MethodAction, JsonError> {
    match value {
        Value::String(name) if name == "keep" => Ok(MethodAction::Keep),
        Value::String(name) if name == "stub" => Ok(MethodAction::Stub),
        Value::Object(_) => {
            let guard = value.field("guard")?;
            let blocked_callers = guard
                .field("blocked_callers")?
                .as_array()?
                .iter()
                .map(|caller| caller.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(MethodAction::Guard { blocked_callers })
        }
        other => err(format!("unknown method action {other:?}")),
    }
}

/// Encode a surrogate payload.
pub fn surrogate_to_json(script: &SurrogateScript) -> Value {
    object(vec![
        ("script_url", Value::String(script.script_url.clone())),
        (
            "methods",
            Value::Array(
                script
                    .methods
                    .iter()
                    .map(|(name, action)| {
                        Value::Array(vec![
                            Value::String(name.clone()),
                            method_action_to_json(action),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "suppressed_tracking_requests",
            Value::number_u64(script.suppressed_tracking_requests),
        ),
        (
            "preserved_functional_requests",
            Value::number_u64(script.preserved_functional_requests),
        ),
    ])
}

/// Decode a surrogate payload.
pub fn surrogate_from_json(value: &Value) -> Result<SurrogateScript, JsonError> {
    let methods = value
        .field("methods")?
        .as_array()?
        .iter()
        .map(|row| {
            let row = row.as_array()?;
            match row {
                [name, action] => {
                    Ok((name.as_str()?.to_string(), method_action_from_json(action)?))
                }
                _ => err(format!("method row has {} fields, expected 2", row.len())),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SurrogateScript {
        script_url: string_field(value, "script_url")?,
        methods,
        suppressed_tracking_requests: value.field("suppressed_tracking_requests")?.as_u64()?,
        preserved_functional_requests: value.field("preserved_functional_requests")?.as_u64()?,
    })
}

/// Encode a decision. The encoding is canonical (field order fixed), so
/// equal decisions render to byte-identical JSON.
pub fn decision_to_json(decision: &Decision) -> Value {
    match decision {
        Decision::Allow(source) => {
            let mut fields = vec![("action", Value::String("allow".to_string()))];
            source_fields(*source, &mut fields);
            object(fields)
        }
        Decision::Block(source) => {
            let mut fields = vec![("action", Value::String("block".to_string()))];
            source_fields(*source, &mut fields);
            object(fields)
        }
        Decision::Surrogate(script) => object(vec![
            ("action", Value::String("surrogate".to_string())),
            ("surrogate", surrogate_to_json(script)),
        ]),
        Decision::Observe => object(vec![("action", Value::String("observe".to_string()))]),
    }
}

/// Decode a decision.
pub fn decision_from_json(value: &Value) -> Result<Decision, JsonError> {
    match value.field("action")?.as_str()? {
        "allow" => Ok(Decision::Allow(source_from_json(value)?)),
        "block" => Ok(Decision::Block(source_from_json(value)?)),
        "surrogate" => Ok(Decision::Surrogate(Arc::new(surrogate_from_json(
            value.field("surrogate")?,
        )?))),
        "observe" => Ok(Decision::Observe),
        other => err(format!("unknown decision action {other:?}")),
    }
}

/// One observation as it travels over `POST /v1/observations`: either
/// pre-labeled attribution parts, or a raw URL for the server's filter
/// engine to label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservationMessage {
    /// Pre-labeled parts (`Sifter::observe_parts`).
    Parts {
        /// Registrable domain.
        domain: String,
        /// Full hostname.
        hostname: String,
        /// Initiating script URL.
        script: String,
        /// Initiating method name.
        method: String,
        /// The oracle label.
        tracking: bool,
    },
    /// A raw URL for the server-side engine to label
    /// (`Sifter::observe_url`).
    Url {
        /// The raw request URL.
        url: String,
        /// Hostname of the page issuing the request.
        source_hostname: String,
        /// Resource type of the request.
        resource_type: ResourceType,
        /// Initiating script URL.
        script: String,
        /// Initiating method name.
        method: String,
    },
}

impl ObservationMessage {
    /// Encode for the request body.
    pub fn to_json_value(&self) -> Value {
        match self {
            ObservationMessage::Parts {
                domain,
                hostname,
                script,
                method,
                tracking,
            } => object(vec![
                ("domain", Value::String(domain.clone())),
                ("hostname", Value::String(hostname.clone())),
                ("script", Value::String(script.clone())),
                ("method", Value::String(method.clone())),
                ("tracking", Value::Bool(*tracking)),
            ]),
            ObservationMessage::Url {
                url,
                source_hostname,
                resource_type,
                script,
                method,
            } => object(vec![
                ("url", Value::String(url.clone())),
                ("source_hostname", Value::String(source_hostname.clone())),
                (
                    "resource_type",
                    Value::String(resource_type.option_name().to_string()),
                ),
                ("script", Value::String(script.clone())),
                ("method", Value::String(method.clone())),
            ]),
        }
    }

    /// Decode one observation; the presence of a `url` field selects the
    /// raw-URL form.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        if value.get("url").is_some() {
            Ok(ObservationMessage::Url {
                url: string_field(value, "url")?,
                source_hostname: string_field(value, "source_hostname")?,
                resource_type: resource_type_from_str(value.field("resource_type")?.as_str()?)?,
                script: string_field(value, "script")?,
                method: string_field(value, "method")?,
            })
        } else {
            Ok(ObservationMessage::Parts {
                domain: string_field(value, "domain")?,
                hostname: string_field(value, "hostname")?,
                script: string_field(value, "script")?,
                method: string_field(value, "method")?,
                tracking: as_bool(value.field("tracking")?)?,
            })
        }
    }
}

/// Encode the reply to `POST /v1/commit`.
pub fn commit_to_json(stats: &CommitStats, version: u64) -> Value {
    object(vec![
        ("observations", Value::number_u64(stats.observations)),
        (
            "reclassified",
            object(vec![
                ("domains", Value::number_u64(stats.domains as u64)),
                ("hostnames", Value::number_u64(stats.hostnames as u64)),
                ("scripts", Value::number_u64(stats.scripts as u64)),
                ("methods", Value::number_u64(stats.methods as u64)),
            ]),
        ),
        ("version", Value::number_u64(version)),
    ])
}

/// Encode `ServiceStats` (the core half of the `/v1/stats` reply).
pub fn service_stats_to_json(stats: &ServiceStats) -> Value {
    object(vec![
        ("version", Value::number_u64(stats.version)),
        (
            "ingest",
            object(vec![
                ("observed", Value::number_u64(stats.ingest.observed)),
                ("committed", Value::number_u64(stats.ingest.committed)),
                ("pending", Value::number_u64(stats.ingest.pending)),
                ("invalid_urls", Value::number_u64(stats.ingest.invalid_urls)),
                ("no_engine", Value::number_u64(stats.ingest.no_engine)),
            ]),
        ),
        (
            "conflicting_observations",
            Value::number_u64(stats.conflicting_observations),
        ),
        ("unattributed", Value::number_u64(stats.unattributed)),
        (
            "resources",
            object(vec![
                ("domains", Value::number_u64(stats.resources[0] as u64)),
                ("hostnames", Value::number_u64(stats.resources[1] as u64)),
                ("scripts", Value::number_u64(stats.resources[2] as u64)),
                ("methods", Value::number_u64(stats.resources[3] as u64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_encodings_round_trip() {
        let decisions = vec![
            Decision::Allow(DecisionSource::Hierarchy(Granularity::Domain)),
            Decision::Block(DecisionSource::FilterList),
            Decision::Observe,
            Decision::Surrogate(Arc::new(SurrogateScript {
                script_url: "https://pub.com/mixed.js".into(),
                methods: vec![
                    ("render".into(), MethodAction::Keep),
                    ("track".into(), MethodAction::Stub),
                    (
                        "xhr".into(),
                        MethodAction::Guard {
                            blocked_callers: vec!["pixel.js @ firePixel".into()],
                        },
                    ),
                ],
                suppressed_tracking_requests: 12,
                preserved_functional_requests: 9,
            })),
        ];
        for decision in decisions {
            let text = decision_to_json(&decision).render();
            let back = decision_from_json(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, decision);
            // Canonical encoding: re-rendering is byte-identical.
            assert_eq!(decision_to_json(&back).render(), text);
        }
    }

    #[test]
    fn decision_messages_round_trip() {
        let messages = vec![
            DecisionMessage::new("ads.com", "px.ads.com", "https://p.com/a.js", "send"),
            DecisionMessage::new("hub.com", "w.hub.com", "https://p.com/m.js", "xhr").with_url(
                "https://w.hub.com/x?y=1",
                "pub.com",
                ResourceType::Xhr,
            ),
        ];
        for message in messages {
            let text = message.to_json_value().render();
            let back = DecisionMessage::from_json_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, message);
        }
    }

    #[test]
    fn observation_messages_round_trip() {
        let messages = vec![
            ObservationMessage::Parts {
                domain: "a.com".into(),
                hostname: "h.a.com".into(),
                script: "s.js".into(),
                method: "m".into(),
                tracking: true,
            },
            ObservationMessage::Url {
                url: "https://px.t.io/b".into(),
                source_hostname: "shop.com".into(),
                resource_type: ResourceType::Image,
                script: "s.js".into(),
                method: "m".into(),
            },
        ];
        for message in messages {
            let text = message.to_json_value().render();
            let back = ObservationMessage::from_json_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, message);
        }
    }

    #[test]
    fn unknown_discriminants_are_rejected() {
        assert!(decision_from_json(&Value::parse(r#"{"action":"explode"}"#).unwrap()).is_err());
        assert!(resource_type_from_str("warp-drive").is_err());
        assert!(granularity_from_str("Universe").is_err());
    }
}
