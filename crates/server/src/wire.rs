//! The wire formats of the verdict server: JSON (over the dependency-free
//! [`crawler::json`] codec) and the length-prefixed binary protocol.
//!
//! Every type here encodes and decodes symmetrically, so a client can
//! round-trip what the server sends — the property the wire tests pin down
//! byte for byte: a [`Decision`] rendered here, shipped over HTTP, and
//! decoded back equals the in-process decision exactly, surrogate payload
//! included. The canonical decision encodings themselves live in
//! [`trackersift::frames`] (shared with the commit-time response
//! preformatter); this module wraps them with the request envelopes.
//!
//! # The binary protocol
//!
//! Clients opt in per request by POSTing `/v1/decisions` (or `:batch`)
//! with `Content-Type:` [`BINARY_CONTENT_TYPE`]; the response body is then
//! binary too. All integers are little-endian; strings and payloads are
//! `u32`-length-prefixed. Request body:
//!
//! ```text
//! u8  protocol version (1)
//! u8  kind            0 = single, 1 = batch
//! u64 keys epoch      (checked only when a record uses id form)
//! u32 record count    (batch only)
//! per record:
//!   u8 form           0 = string keys, 1 = interned key ids
//!   u8 flags          bit 0: URL context follows the keys
//!   form 1: u32 domain, u32 hostname, u32 script, u32 method-name id
//!   form 0: 4 × length-prefixed string (same order)
//!   flags bit 0: length-prefixed url, length-prefixed source hostname,
//!                u8 resource-type code (index into `ResourceType::ALL`)
//! ```
//!
//! Key ids come from the `GET /v1/keys` handshake and are valid for the
//! epoch it reported; a stale epoch gets `409 Conflict`, never a silently
//! wrong verdict. Response bodies are the frames of
//! [`trackersift::frames`]: a 15-byte single-decision header (+ surrogate
//! payload), or `u8 proto, u64 version, u32 count` followed by 6-byte
//! record headers (+ payloads) for batches.

use crawler::json::{object, JsonError, Value};
use filterlist::ResourceType;
use trackersift::frames::{self, PROTO_VERSION, RECORD_HEADER_LEN};
use trackersift::{
    CommitStats, Decision, DecisionRequest, FrameError, FrameReader, FrozenKeys, ServiceStats,
    SurrogateScript,
};

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(message.into()))
}

fn as_bool(value: &Value) -> Result<bool, JsonError> {
    match value {
        Value::Bool(flag) => Ok(*flag),
        other => err(format!("expected bool, got {other:?}")),
    }
}

fn string_field(value: &Value, key: &str) -> Result<String, JsonError> {
    Ok(value.field(key)?.as_str()?.to_string())
}

/// Parse a resource type from its canonical filter-list option name
/// (`script`, `image`, `xmlhttprequest`, …).
pub fn resource_type_from_str(name: &str) -> Result<ResourceType, JsonError> {
    ResourceType::ALL
        .into_iter()
        .find(|kind| kind.option_name() == name)
        .ok_or_else(|| JsonError(format!("unknown resource type {name:?}")))
}

/// Encode a resource type as its binary wire code (index into
/// [`ResourceType::ALL`]).
pub fn resource_type_code(kind: ResourceType) -> u8 {
    ResourceType::ALL
        .into_iter()
        .position(|candidate| candidate == kind)
        .expect("ALL contains every variant") as u8
}

/// Decode a binary resource-type code.
pub fn resource_type_from_code(code: u8) -> Result<ResourceType, FrameError> {
    ResourceType::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| FrameError(format!("unknown resource type code {code}")))
}

/// An owned decision query as it travels over the wire; borrow it into a
/// [`DecisionRequest`] with [`DecisionMessage::as_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionMessage {
    /// Registrable domain of the request URL.
    pub domain: String,
    /// Full hostname of the request URL.
    pub hostname: String,
    /// URL of the initiating script.
    pub script: String,
    /// Method name of the initiating frame.
    pub method: String,
    /// Raw request URL (enables the filter-list backstop), if sent.
    pub url: Option<String>,
    /// Hostname of the page issuing the request (only with `url`).
    pub source_hostname: String,
    /// Resource type (only meaningful with `url`).
    pub resource_type: ResourceType,
}

impl DecisionMessage {
    /// A keys-only query.
    pub fn new(domain: &str, hostname: &str, script: &str, method: &str) -> Self {
        DecisionMessage {
            domain: domain.to_string(),
            hostname: hostname.to_string(),
            script: script.to_string(),
            method: method.to_string(),
            url: None,
            source_hostname: String::new(),
            resource_type: ResourceType::Other,
        }
    }

    /// Attach raw-URL context for the filter-list backstop.
    pub fn with_url(
        mut self,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
    ) -> Self {
        self.url = Some(url.to_string());
        self.source_hostname = source_hostname.to_string();
        self.resource_type = resource_type;
        self
    }

    /// Borrow as the core decision query.
    pub fn as_request(&self) -> DecisionRequest<'_> {
        let request =
            DecisionRequest::new(&self.domain, &self.hostname, &self.script, &self.method);
        match &self.url {
            Some(url) => request.with_url(url, &self.source_hostname, self.resource_type),
            None => request,
        }
    }

    /// Encode for the `POST /v1/decisions` body.
    pub fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("domain", Value::String(self.domain.clone())),
            ("hostname", Value::String(self.hostname.clone())),
            ("script", Value::String(self.script.clone())),
            ("method", Value::String(self.method.clone())),
        ];
        if let Some(url) = &self.url {
            fields.push(("url", Value::String(url.clone())));
            fields.push((
                "source_hostname",
                Value::String(self.source_hostname.clone()),
            ));
            fields.push((
                "resource_type",
                Value::String(self.resource_type.option_name().to_string()),
            ));
        }
        object(fields)
    }

    /// Decode from a request body value.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let mut message = DecisionMessage::new(
            value.field("domain")?.as_str()?,
            value.field("hostname")?.as_str()?,
            value.field("script")?.as_str()?,
            value.field("method")?.as_str()?,
        );
        if let Some(url) = value.get("url") {
            message.url = Some(url.as_str()?.to_string());
            message.source_hostname = match value.get("source_hostname") {
                Some(host) => host.as_str()?.to_string(),
                None => String::new(),
            };
            message.resource_type = match value.get("resource_type") {
                Some(kind) => resource_type_from_str(kind.as_str()?)?,
                None => ResourceType::Other,
            };
        }
        Ok(message)
    }
}

/// Encode a surrogate payload. (Delegates to the canonical encoding in
/// [`trackersift::frames`], shared with the commit-time preformatter.)
pub fn surrogate_to_json(script: &SurrogateScript) -> Value {
    frames::surrogate_value(script)
}

/// Decode a surrogate payload.
pub fn surrogate_from_json(value: &Value) -> Result<SurrogateScript, JsonError> {
    frames::surrogate_from_value(value)
}

/// Encode a decision. The encoding is canonical (field order fixed), so
/// equal decisions render to byte-identical JSON.
pub fn decision_to_json(decision: &Decision) -> Value {
    frames::decision_value(decision)
}

/// Decode a decision.
pub fn decision_from_json(value: &Value) -> Result<Decision, JsonError> {
    frames::decision_from_value(value)
}

// ---------------------------------------------------------------------
// Binary protocol
// ---------------------------------------------------------------------

/// The `Content-Type` that negotiates the binary protocol on
/// `POST /v1/decisions` and `POST /v1/decisions:batch`.
pub const BINARY_CONTENT_TYPE: &str = "application/x-trackersift-verdict";

/// Request kind byte: one decision, response is a single frame.
pub const KIND_SINGLE: u8 = 0;
/// Request kind byte: counted records, response is a batch frame.
pub const KIND_BATCH: u8 = 1;
/// Record form byte: four length-prefixed key strings.
pub const FORM_STRINGS: u8 = 0;
/// Record form byte: four interned `u32` key ids (epoch-checked).
pub const FORM_IDS: u8 = 1;
/// Record flag bit: URL context (url, source hostname, resource type)
/// follows the keys.
pub const FLAG_URL: u8 = 1;

/// The four attribution keys of one binary record, in either wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryKeys<'a> {
    /// Interned ids from the `GET /v1/keys` handshake, `u32::MAX` for "not
    /// in the table" (the walk treats it as an unknown resource).
    Ids {
        /// Registrable-domain key id.
        domain: u32,
        /// Hostname key id.
        hostname: u32,
        /// Initiating-script key id.
        script: u32,
        /// Method-*name* key id.
        method: u32,
    },
    /// Raw key strings (no handshake needed).
    Strings {
        /// Registrable domain.
        domain: &'a str,
        /// Full hostname.
        hostname: &'a str,
        /// Initiating script URL.
        script: &'a str,
        /// Initiating method name.
        method: &'a str,
    },
}

/// Optional raw-URL context enabling the filter-list backstop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryUrlContext<'a> {
    /// The raw request URL.
    pub url: &'a str,
    /// Hostname of the page issuing the request.
    pub source_hostname: &'a str,
    /// Resource type of the request.
    pub resource_type: ResourceType,
}

/// One decision record of a binary request, borrowing from the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryRecord<'a> {
    /// The four attribution keys.
    pub keys: BinaryKeys<'a>,
    /// URL context, when flag bit 0 was set.
    pub context: Option<BinaryUrlContext<'a>>,
}

/// A decoded binary decision request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryRequest<'a> {
    /// `true` for the batch kind (counted records, batch response frame).
    pub batch: bool,
    /// The client's key-table epoch; meaningful only when a record uses
    /// [`BinaryKeys::Ids`].
    pub epoch: u64,
    /// The decision records.
    pub records: Vec<BinaryRecord<'a>>,
}

impl BinaryRequest<'_> {
    /// Whether any record uses interned ids (and thus the epoch matters).
    pub fn uses_ids(&self) -> bool {
        self.records
            .iter()
            .any(|record| matches!(record.keys, BinaryKeys::Ids { .. }))
    }
}

/// Decode a binary request body (either kind).
pub fn decode_binary_request(body: &[u8]) -> Result<BinaryRequest<'_>, FrameError> {
    let mut reader = FrameReader::new(body);
    let proto = reader.u8()?;
    if proto != PROTO_VERSION {
        return Err(FrameError(format!("unsupported protocol version {proto}")));
    }
    let kind = reader.u8()?;
    let epoch = reader.u64()?;
    let count = match kind {
        KIND_SINGLE => 1,
        KIND_BATCH => reader.u32()? as usize,
        other => return Err(FrameError(format!("unknown request kind {other}"))),
    };
    // Each record is at least 2 bytes; a hostile count cannot force a huge
    // preallocation.
    let mut records = Vec::with_capacity(count.min(reader.remaining() / 2 + 1));
    for _ in 0..count {
        let form = reader.u8()?;
        let flags = reader.u8()?;
        if flags & !FLAG_URL != 0 {
            return Err(FrameError(format!("unknown record flags {flags:#x}")));
        }
        let keys = match form {
            FORM_IDS => BinaryKeys::Ids {
                domain: reader.u32()?,
                hostname: reader.u32()?,
                script: reader.u32()?,
                method: reader.u32()?,
            },
            FORM_STRINGS => BinaryKeys::Strings {
                domain: reader.string()?,
                hostname: reader.string()?,
                script: reader.string()?,
                method: reader.string()?,
            },
            other => return Err(FrameError(format!("unknown record form {other}"))),
        };
        let context = if flags & FLAG_URL != 0 {
            Some(BinaryUrlContext {
                url: reader.string()?,
                source_hostname: reader.string()?,
                resource_type: resource_type_from_code(reader.u8()?)?,
            })
        } else {
            None
        };
        records.push(BinaryRecord { keys, context });
    }
    reader.finish()?;
    Ok(BinaryRequest {
        batch: kind == KIND_BATCH,
        epoch,
        records,
    })
}

fn encode_record(out: &mut Vec<u8>, record: &BinaryRecord<'_>) {
    let put_str = |out: &mut Vec<u8>, s: &str| {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    };
    match record.keys {
        BinaryKeys::Ids { .. } => out.push(FORM_IDS),
        BinaryKeys::Strings { .. } => out.push(FORM_STRINGS),
    }
    out.push(if record.context.is_some() {
        FLAG_URL
    } else {
        0
    });
    match record.keys {
        BinaryKeys::Ids {
            domain,
            hostname,
            script,
            method,
        } => {
            for id in [domain, hostname, script, method] {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        BinaryKeys::Strings {
            domain,
            hostname,
            script,
            method,
        } => {
            for key in [domain, hostname, script, method] {
                put_str(out, key);
            }
        }
    }
    if let Some(context) = &record.context {
        put_str(out, context.url);
        put_str(out, context.source_hostname);
        out.push(resource_type_code(context.resource_type));
    }
}

/// Encode a single-kind binary request body.
pub fn encode_binary_single(epoch: u64, record: &BinaryRecord<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(PROTO_VERSION);
    out.push(KIND_SINGLE);
    out.extend_from_slice(&epoch.to_le_bytes());
    encode_record(&mut out, record);
    out
}

/// Encode a batch-kind binary request body.
pub fn encode_binary_batch(epoch: u64, records: &[BinaryRecord<'_>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + records.len() * 32);
    out.push(PROTO_VERSION);
    out.push(KIND_BATCH);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for record in records {
        encode_record(&mut out, record);
    }
    out
}

impl<'a> BinaryRecord<'a> {
    /// A string-form record borrowing a [`DecisionMessage`]'s keys and URL
    /// context.
    pub fn from_message(message: &'a DecisionMessage) -> Self {
        BinaryRecord {
            keys: BinaryKeys::Strings {
                domain: &message.domain,
                hostname: &message.hostname,
                script: &message.script,
                method: &message.method,
            },
            context: message.url.as_deref().map(|url| BinaryUrlContext {
                url,
                source_hostname: &message.source_hostname,
                resource_type: message.resource_type,
            }),
        }
    }
}

/// Decode a binary single-decision response body into the version and the
/// decision it encodes.
pub fn decode_binary_single_response(body: &[u8]) -> Result<(u64, Decision), FrameError> {
    let mut reader = FrameReader::new(body);
    let proto = reader.u8()?;
    if proto != PROTO_VERSION {
        return Err(FrameError(format!("unsupported protocol version {proto}")));
    }
    let action = reader.u8()?;
    let source = reader.u8()?;
    let version = reader.u64()?;
    let payload = reader.bytes()?;
    reader.finish()?;
    Ok((version, frames::decode_decision(action, source, payload)?))
}

/// Decode a binary batch response body into the version and the decisions
/// it encodes.
pub fn decode_binary_batch_response(body: &[u8]) -> Result<(u64, Vec<Decision>), FrameError> {
    let mut reader = FrameReader::new(body);
    let proto = reader.u8()?;
    if proto != PROTO_VERSION {
        return Err(FrameError(format!("unsupported protocol version {proto}")));
    }
    let version = reader.u64()?;
    let count = reader.u32()? as usize;
    let mut decisions = Vec::with_capacity(count.min(reader.remaining() / RECORD_HEADER_LEN + 1));
    for _ in 0..count {
        let action = reader.u8()?;
        let source = reader.u8()?;
        let payload = reader.bytes()?;
        decisions.push(frames::decode_decision(action, source, payload)?);
    }
    reader.finish()?;
    Ok((version, decisions))
}

/// Kind byte of a binary load-shed frame (the body of a binary-protocol
/// `503`): deliberately outside the decision-action code space so a
/// client that skips the status check still cannot mistake it for a
/// verdict.
pub const KIND_SHED: u8 = 0xFF;

/// Encode the binary load-shed frame: `u8 proto, u8 KIND_SHED,
/// u32 retry-after seconds` — the binary-protocol twin of the JSON
/// `{"error": …, "retry_after": n}` body, sent with `503` + `Retry-After`.
pub fn encode_binary_shed(retry_after: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.push(PROTO_VERSION);
    out.push(KIND_SHED);
    out.extend_from_slice(&retry_after.to_le_bytes());
    out
}

/// Decode a binary load-shed frame into its retry-after hint (seconds).
pub fn decode_binary_shed(body: &[u8]) -> Result<u32, FrameError> {
    let mut reader = FrameReader::new(body);
    let proto = reader.u8()?;
    if proto != PROTO_VERSION {
        return Err(FrameError(format!("unsupported protocol version {proto}")));
    }
    let kind = reader.u8()?;
    if kind != KIND_SHED {
        return Err(FrameError(format!("not a shed frame (kind {kind})")));
    }
    let retry_after = reader.u32()?;
    reader.finish()?;
    Ok(retry_after)
}

/// Encode the `GET /v1/keys` handshake reply: the key-id table of the
/// serving verdict table. `keys[i]` is the string whose interned id is
/// `i`; the epoch scopes every id's validity (a restore bumps it).
pub fn keys_to_json(epoch: u64, version: u64, keys: &FrozenKeys) -> String {
    object(vec![
        ("epoch", Value::number_u64(epoch)),
        ("version", Value::number_u64(version)),
        (
            "keys",
            Value::Array(
                keys.iter()
                    .map(|(_, name)| Value::String(name.to_string()))
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// One observation as it travels over `POST /v1/observations`: either
/// pre-labeled attribution parts, or a raw URL for the server's filter
/// engine to label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservationMessage {
    /// Pre-labeled parts (`Sifter::observe_parts`).
    Parts {
        /// Registrable domain.
        domain: String,
        /// Full hostname.
        hostname: String,
        /// Initiating script URL.
        script: String,
        /// Initiating method name.
        method: String,
        /// The oracle label.
        tracking: bool,
    },
    /// A raw URL for the server-side engine to label
    /// (`Sifter::observe_url`).
    Url {
        /// The raw request URL.
        url: String,
        /// Hostname of the page issuing the request.
        source_hostname: String,
        /// Resource type of the request.
        resource_type: ResourceType,
        /// Initiating script URL.
        script: String,
        /// Initiating method name.
        method: String,
    },
}

impl ObservationMessage {
    /// Encode for the request body.
    pub fn to_json_value(&self) -> Value {
        match self {
            ObservationMessage::Parts {
                domain,
                hostname,
                script,
                method,
                tracking,
            } => object(vec![
                ("domain", Value::String(domain.clone())),
                ("hostname", Value::String(hostname.clone())),
                ("script", Value::String(script.clone())),
                ("method", Value::String(method.clone())),
                ("tracking", Value::Bool(*tracking)),
            ]),
            ObservationMessage::Url {
                url,
                source_hostname,
                resource_type,
                script,
                method,
            } => object(vec![
                ("url", Value::String(url.clone())),
                ("source_hostname", Value::String(source_hostname.clone())),
                (
                    "resource_type",
                    Value::String(resource_type.option_name().to_string()),
                ),
                ("script", Value::String(script.clone())),
                ("method", Value::String(method.clone())),
            ]),
        }
    }

    /// Decode one observation; the presence of a `url` field selects the
    /// raw-URL form.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        if value.get("url").is_some() {
            Ok(ObservationMessage::Url {
                url: string_field(value, "url")?,
                source_hostname: string_field(value, "source_hostname")?,
                resource_type: resource_type_from_str(value.field("resource_type")?.as_str()?)?,
                script: string_field(value, "script")?,
                method: string_field(value, "method")?,
            })
        } else {
            Ok(ObservationMessage::Parts {
                domain: string_field(value, "domain")?,
                hostname: string_field(value, "hostname")?,
                script: string_field(value, "script")?,
                method: string_field(value, "method")?,
                tracking: as_bool(value.field("tracking")?)?,
            })
        }
    }
}

/// Encode the reply to `POST /v1/commit`.
pub fn commit_to_json(stats: &CommitStats, version: u64) -> Value {
    object(vec![
        ("observations", Value::number_u64(stats.observations)),
        (
            "reclassified",
            object(vec![
                ("domains", Value::number_u64(stats.domains as u64)),
                ("hostnames", Value::number_u64(stats.hostnames as u64)),
                ("scripts", Value::number_u64(stats.scripts as u64)),
                ("methods", Value::number_u64(stats.methods as u64)),
            ]),
        ),
        ("version", Value::number_u64(version)),
    ])
}

/// Encode `ServiceStats` (the core half of the `/v1/stats` reply).
pub fn service_stats_to_json(stats: &ServiceStats) -> Value {
    object(vec![
        ("version", Value::number_u64(stats.version)),
        (
            "ingest",
            object(vec![
                ("observed", Value::number_u64(stats.ingest.observed)),
                ("committed", Value::number_u64(stats.ingest.committed)),
                ("pending", Value::number_u64(stats.ingest.pending)),
                ("invalid_urls", Value::number_u64(stats.ingest.invalid_urls)),
                ("no_engine", Value::number_u64(stats.ingest.no_engine)),
            ]),
        ),
        (
            "conflicting_observations",
            Value::number_u64(stats.conflicting_observations),
        ),
        ("unattributed", Value::number_u64(stats.unattributed)),
        (
            "resources",
            object(vec![
                ("domains", Value::number_u64(stats.resources[0] as u64)),
                ("hostnames", Value::number_u64(stats.resources[1] as u64)),
                ("scripts", Value::number_u64(stats.resources[2] as u64)),
                ("methods", Value::number_u64(stats.resources[3] as u64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trackersift::{DecisionSource, Granularity, MethodAction};

    #[test]
    fn decision_encodings_round_trip() {
        let decisions = vec![
            Decision::Allow(DecisionSource::Hierarchy(Granularity::Domain)),
            Decision::Block(DecisionSource::FilterList),
            Decision::Observe,
            Decision::Surrogate(Arc::new(SurrogateScript {
                script_url: "https://pub.com/mixed.js".into(),
                methods: vec![
                    ("render".into(), MethodAction::Keep),
                    ("track".into(), MethodAction::Stub),
                    (
                        "xhr".into(),
                        MethodAction::Guard {
                            blocked_callers: vec!["pixel.js @ firePixel".into()],
                        },
                    ),
                ],
                suppressed_tracking_requests: 12,
                preserved_functional_requests: 9,
            })),
            Decision::Rewrite(Arc::new(trackersift::RewrittenUrl::new(
                "https://shop.example/p?id=7",
            ))),
        ];
        for decision in decisions {
            let text = decision_to_json(&decision).render();
            let back = decision_from_json(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, decision);
            // Canonical encoding: re-rendering is byte-identical.
            assert_eq!(decision_to_json(&back).render(), text);
        }
    }

    #[test]
    fn decision_messages_round_trip() {
        let messages = vec![
            DecisionMessage::new("ads.com", "px.ads.com", "https://p.com/a.js", "send"),
            DecisionMessage::new("hub.com", "w.hub.com", "https://p.com/m.js", "xhr").with_url(
                "https://w.hub.com/x?y=1",
                "pub.com",
                ResourceType::Xhr,
            ),
        ];
        for message in messages {
            let text = message.to_json_value().render();
            let back = DecisionMessage::from_json_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, message);
        }
    }

    #[test]
    fn observation_messages_round_trip() {
        let messages = vec![
            ObservationMessage::Parts {
                domain: "a.com".into(),
                hostname: "h.a.com".into(),
                script: "s.js".into(),
                method: "m".into(),
                tracking: true,
            },
            ObservationMessage::Url {
                url: "https://px.t.io/b".into(),
                source_hostname: "shop.com".into(),
                resource_type: ResourceType::Image,
                script: "s.js".into(),
                method: "m".into(),
            },
        ];
        for message in messages {
            let text = message.to_json_value().render();
            let back = ObservationMessage::from_json_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, message);
        }
    }

    #[test]
    fn unknown_discriminants_are_rejected() {
        assert!(decision_from_json(&Value::parse(r#"{"action":"explode"}"#).unwrap()).is_err());
        assert!(resource_type_from_str("warp-drive").is_err());
        assert!(resource_type_from_code(250).is_err());
    }

    #[test]
    fn resource_type_codes_are_a_bijection() {
        for kind in ResourceType::ALL {
            assert_eq!(
                resource_type_from_code(resource_type_code(kind)).unwrap(),
                kind
            );
        }
    }

    #[test]
    fn binary_requests_round_trip_both_forms() {
        let message = DecisionMessage::new("hub.com", "w.hub.com", "https://p.com/m.js", "xhr")
            .with_url("https://w.hub.com/x?y=1", "pub.com", ResourceType::Xhr);
        let string_record = BinaryRecord::from_message(&message);
        let id_record = BinaryRecord {
            keys: BinaryKeys::Ids {
                domain: 3,
                hostname: 1,
                script: 9,
                method: u32::MAX,
            },
            context: None,
        };

        let single = encode_binary_single(7, &string_record);
        let decoded = decode_binary_request(&single).expect("single decodes");
        assert!(!decoded.batch);
        assert_eq!(decoded.epoch, 7);
        assert_eq!(decoded.records, vec![string_record]);
        assert!(!decoded.uses_ids());

        let batch = encode_binary_batch(9, &[id_record, string_record]);
        let decoded = decode_binary_request(&batch).expect("batch decodes");
        assert!(decoded.batch);
        assert_eq!(decoded.epoch, 9);
        assert_eq!(decoded.records, vec![id_record, string_record]);
        assert!(decoded.uses_ids());

        // Every truncation fails cleanly, never panics.
        for cut in 0..batch.len() {
            assert!(decode_binary_request(&batch[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        let mut padded = batch.clone();
        padded.push(0);
        assert!(decode_binary_request(&padded).is_err());
        // Unknown protocol / kind / form / flags are rejected.
        let mut wrong_proto = single.clone();
        wrong_proto[0] = 9;
        assert!(decode_binary_request(&wrong_proto).is_err());
        let mut wrong_kind = single.clone();
        wrong_kind[1] = 7;
        assert!(decode_binary_request(&wrong_kind).is_err());
        let mut wrong_form = single.clone();
        wrong_form[10] = 5;
        assert!(decode_binary_request(&wrong_form).is_err());
        let mut wrong_flags = single;
        wrong_flags[11] = 0x80 | FLAG_URL;
        assert!(decode_binary_request(&wrong_flags).is_err());
    }

    #[test]
    fn binary_responses_round_trip() {
        let fixed = Decision::Block(DecisionSource::Hierarchy(Granularity::Domain));
        let single = frames::encode_fixed_single(&fixed, 42);
        assert_eq!(
            decode_binary_single_response(&single).expect("single decodes"),
            (42, fixed.clone())
        );

        let plan = SurrogateScript {
            script_url: "https://pub.com/mixed.js".into(),
            methods: vec![("track".into(), MethodAction::Stub)],
            suppressed_tracking_requests: 6,
            preserved_functional_requests: 8,
        };
        let payload = frames::encode_surrogate_payload(&plan);
        let mut body = frames::encode_surrogate_single_header(3, payload.len() as u32).to_vec();
        body.extend_from_slice(&payload);
        let (version, decision) = decode_binary_single_response(&body).expect("surrogate decodes");
        assert_eq!(version, 3);
        assert_eq!(decision, Decision::Surrogate(Arc::new(plan.clone())));

        let rewritten = trackersift::RewrittenUrl::new("https://shop.example/p?id=7");
        let rewrite_payload = frames::encode_rewrite_payload(&rewritten);
        let mut body =
            frames::encode_rewrite_single_header(5, rewrite_payload.len() as u32).to_vec();
        body.extend_from_slice(&rewrite_payload);
        let (version, decision) = decode_binary_single_response(&body).expect("rewrite decodes");
        assert_eq!(version, 5);
        assert_eq!(decision, Decision::Rewrite(Arc::new(rewritten.clone())));

        // A batch mixing a fixed decision, a surrogate, and a rewrite.
        let mut batch = vec![PROTO_VERSION];
        batch.extend_from_slice(&11u64.to_le_bytes());
        batch.extend_from_slice(&3u32.to_le_bytes());
        let (action, source) = frames::codes_of(&fixed);
        batch.extend_from_slice(&frames::encode_record_header(action, source, 0));
        batch.extend_from_slice(&frames::encode_record_header(
            frames::ACTION_SURROGATE,
            frames::SOURCE_NONE,
            payload.len() as u32,
        ));
        batch.extend_from_slice(&payload);
        batch.extend_from_slice(&frames::encode_record_header(
            frames::ACTION_REWRITE,
            frames::SOURCE_NONE,
            rewrite_payload.len() as u32,
        ));
        batch.extend_from_slice(&rewrite_payload);
        let (version, decisions) = decode_binary_batch_response(&batch).expect("batch decodes");
        assert_eq!(version, 11);
        assert_eq!(
            decisions,
            vec![
                fixed,
                Decision::Surrogate(Arc::new(plan)),
                Decision::Rewrite(Arc::new(rewritten)),
            ]
        );
    }

    #[test]
    fn shed_frames_round_trip_and_reject_noise() {
        let frame = encode_binary_shed(7);
        assert_eq!(frame.len(), 6);
        assert_eq!(decode_binary_shed(&frame).expect("shed decodes"), 7);
        // Every truncation is rejected, as is a non-shed kind byte.
        for len in 0..frame.len() {
            assert!(decode_binary_shed(&frame[..len]).is_err());
        }
        let mut wrong_kind = frame.clone();
        wrong_kind[1] = KIND_SINGLE;
        assert!(decode_binary_shed(&wrong_kind).is_err());
        let mut trailing = frame;
        trailing.push(0);
        assert!(decode_binary_shed(&trailing).is_err());
    }
}
