//! A minimal, dependency-free HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! This is deliberately not a general-purpose HTTP implementation — it is
//! exactly the subset a verdict server needs, hardened against hostile
//! input instead of feature-complete:
//!
//! * request line + headers, CRLF-framed, with a hard cap on header bytes
//!   ([`MAX_HEADER_BYTES`]) so a drip-feeding client cannot balloon memory;
//! * bodies framed by `Content-Length` only, capped by the server config;
//!   `Transfer-Encoding` is refused with `501` rather than half-implemented
//!   (request smuggling lives in that corner);
//! * keep-alive with pipelining (bytes read past one request's body are
//!   kept for the next), `Connection: close` honored both ways;
//! * every malformed input maps to a typed [`RequestError`] and from there
//!   to a 4xx/5xx response — a parse failure must never panic or wedge the
//!   worker that hit it.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers. Generous for machine clients
/// (our own wire format needs well under 1 KiB) while bounding what a
/// hostile client can make a worker buffer.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, `PUT`, …).
    pub method: String,
    /// Request target (path), exactly as received.
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(value) if value.contains("close") => false,
            Some(value) if value.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why reading one request off a connection failed.
#[derive(Debug)]
pub enum RequestError {
    /// Clean end of stream before any request bytes: the peer is done.
    Closed,
    /// Transport error (including read timeouts).
    Io(io::Error),
    /// Syntactically invalid request (→ `400`).
    Malformed(String),
    /// Request line + headers exceed [`MAX_HEADER_BYTES`] (→ `431`).
    HeadersTooLarge,
    /// Declared body exceeds the configured cap (→ `413`).
    BodyTooLarge,
    /// `Transfer-Encoding` framing we refuse to guess about (→ `501`).
    UnsupportedTransfer,
}

impl RequestError {
    /// The response this error maps to, or `None` when the connection is
    /// simply done (clean close / transport loss) and nothing can be sent.
    pub fn response(&self) -> Option<HttpResponse> {
        match self {
            RequestError::Closed | RequestError::Io(_) => None,
            RequestError::Malformed(detail) => {
                Some(HttpResponse::error(400, "Bad Request", detail))
            }
            RequestError::HeadersTooLarge => Some(HttpResponse::error(
                431,
                "Request Header Fields Too Large",
                "request line + headers exceed the server limit",
            )),
            RequestError::BodyTooLarge => Some(HttpResponse::error(
                413,
                "Payload Too Large",
                "request body exceeds the configured limit",
            )),
            RequestError::UnsupportedTransfer => Some(HttpResponse::error(
                501,
                "Not Implemented",
                "transfer-encoding is not supported; send content-length",
            )),
        }
    }
}

/// One HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Force `Connection: close` regardless of the request's preference.
    pub close: bool,
}

impl HttpResponse {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: &str) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type: "text/plain",
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// An error response carrying `{"error": detail}`; errors always close
    /// the connection (a client that sent garbage has lost framing sync).
    pub fn error(status: u16, reason: &'static str, detail: &str) -> Self {
        let body = crawler::json::object(vec![(
            "error",
            crawler::json::Value::String(detail.to_string()),
        )])
        .render();
        HttpResponse {
            status,
            reason,
            content_type: "application/json",
            body: body.into_bytes(),
            close: status >= 400,
        }
    }

    /// Serialise the response to the stream.
    pub fn write_to(&self, stream: &mut TcpStream, request_keep_alive: bool) -> io::Result<()> {
        let keep_alive = request_keep_alive && !self.close;
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// One client connection: the stream plus any bytes already read past the
/// previous request (keep-alive pipelining).
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl Connection {
    /// Wrap an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        Connection {
            stream,
            buffer: Vec::new(),
        }
    }

    /// The underlying stream (for writing responses).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Read and parse the next request off the connection.
    pub fn read_request(&mut self, max_body_bytes: usize) -> Result<HttpRequest, RequestError> {
        let header_end = loop {
            if let Some(end) = find_terminator(&self.buffer) {
                break end;
            }
            if self.buffer.len() > MAX_HEADER_BYTES {
                return Err(RequestError::HeadersTooLarge);
            }
            if self.fill()? == 0 {
                return if self.buffer.is_empty() {
                    Err(RequestError::Closed)
                } else {
                    Err(RequestError::Malformed("truncated request head".into()))
                };
            }
        };
        if header_end > MAX_HEADER_BYTES {
            return Err(RequestError::HeadersTooLarge);
        }

        let head = std::str::from_utf8(&self.buffer[..header_end])
            .map_err(|_| RequestError::Malformed("request head is not valid utf-8".into()))?
            .to_string();
        let body_start = header_end + 4;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(method), Some(target), Some(version), None)
                    if !method.is_empty() && !target.is_empty() =>
                {
                    (method, target, version)
                }
                _ => {
                    return Err(RequestError::Malformed(format!(
                        "malformed request line {request_line:?}"
                    )))
                }
            };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => {
                return Err(RequestError::Malformed(format!(
                    "unsupported protocol {other:?}"
                )))
            }
        };
        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(RequestError::Malformed(format!(
                    "malformed header line {line:?}"
                )));
            };
            if name.is_empty() || name.contains(' ') {
                return Err(RequestError::Malformed(format!(
                    "malformed header name {name:?}"
                )));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let request = HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            http11,
            headers,
            body: Vec::new(),
        };
        if request.header("transfer-encoding").is_some() {
            return Err(RequestError::UnsupportedTransfer);
        }
        // Ambiguous body framing is the request-smuggling vector: a front
        // proxy honoring one Content-Length while we honor another desyncs
        // the connection. Any duplicate is rejected outright (RFC 9112
        // §6.3 requires rejecting differing values; identical duplicates
        // buy a client nothing).
        if request
            .headers
            .iter()
            .filter(|(name, _)| name == "content-length")
            .count()
            > 1
        {
            return Err(RequestError::Malformed(
                "duplicate content-length headers".into(),
            ));
        }
        let content_length = match request.header("content-length") {
            // RFC 9112 framing is 1*DIGIT; `usize::from_str` alone would
            // also accept forms like `+17` that a conforming front proxy
            // rejects — another framing ambiguity, refused like the rest.
            Some(value) if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) => value
                .parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad content-length {value:?}")))?,
            Some(value) => {
                return Err(RequestError::Malformed(format!(
                    "bad content-length {value:?}"
                )))
            }
            None => 0,
        };
        if content_length > max_body_bytes {
            return Err(RequestError::BodyTooLarge);
        }

        // Consume the head, then read the body (some of it may already be
        // buffered from the previous read).
        self.buffer.drain(..body_start);
        while self.buffer.len() < content_length {
            if self.fill()? == 0 {
                return Err(RequestError::Malformed("truncated request body".into()));
            }
        }
        let mut request = request;
        request.body = self.buffer.drain(..content_length).collect();
        Ok(request)
    }

    /// Read more bytes into the buffer; returns how many arrived.
    fn fill(&mut self) -> Result<usize, RequestError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(n) => {
                self.buffer.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(error) => Err(RequestError::Io(error)),
        }
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|window| window == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_is_found_only_when_complete() {
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_terminator(b""), None);
    }

    #[test]
    fn error_responses_cover_every_client_fault() {
        assert_eq!(
            RequestError::Malformed("x".into())
                .response()
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            RequestError::HeadersTooLarge.response().unwrap().status,
            431
        );
        assert_eq!(RequestError::BodyTooLarge.response().unwrap().status, 413);
        assert_eq!(
            RequestError::UnsupportedTransfer.response().unwrap().status,
            501
        );
        assert!(RequestError::Closed.response().is_none());
    }
}
