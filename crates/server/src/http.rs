//! A minimal, dependency-free HTTP/1.1 layer for nonblocking sockets.
//!
//! This is deliberately not a general-purpose HTTP implementation — it is
//! exactly the subset a verdict server needs, hardened against hostile
//! input instead of feature-complete:
//!
//! * request line + headers, CRLF-framed, with a hard cap on header bytes
//!   ([`MAX_HEADER_BYTES`]) so a drip-feeding client cannot balloon memory;
//! * bodies framed by `Content-Length` only, capped by the server config;
//!   `Transfer-Encoding` is refused with `501` rather than half-implemented
//!   (request smuggling lives in that corner);
//! * keep-alive with pipelining (bytes read past one request's body are
//!   kept for the next), `Connection: close` honored both ways;
//! * every malformed input maps to a typed [`RequestError`] and from there
//!   to a 4xx/5xx response — a parse failure must never panic or wedge the
//!   worker that hit it.
//!
//! The parser is **push-based** ([`RequestParser`]): the event loop feeds
//! it whatever bytes `read` produced and asks for complete requests; "not
//! enough bytes yet" is `Ok(None)`, never a blocking wait. That is what
//! lets one readiness-polled worker multiplex hundreds of connections —
//! no thread is ever parked inside a half-received request.

use std::io::{self, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers. Generous for machine clients
/// (our own wire format needs well under 1 KiB) while bounding what a
/// hostile client can make a worker buffer.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, `PUT`, …).
    pub method: String,
    /// Request target (path), exactly as received.
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(value) if value.contains("close") => false,
            Some(value) if value.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why parsing one request failed.
#[derive(Debug)]
pub enum RequestError {
    /// Syntactically invalid request (→ `400`).
    Malformed(String),
    /// `Content-Length` that is not `1*DIGIT` fitting in `usize` — covers
    /// signs, empty values, garbage, and values overflowing the platform
    /// integer (→ `400`).
    BadContentLength(String),
    /// More than one `Content-Length` header — the request-smuggling
    /// ambiguity, rejected even when the duplicates agree (→ `400`).
    DuplicateContentLength,
    /// Request line + headers exceed [`MAX_HEADER_BYTES`] (→ `431`).
    HeadersTooLarge,
    /// Declared body exceeds the configured cap (→ `413`).
    BodyTooLarge,
    /// `Transfer-Encoding` framing we refuse to guess about (→ `501`).
    UnsupportedTransfer,
}

impl RequestError {
    /// The response this error maps to.
    pub fn response(&self) -> HttpResponse {
        match self {
            RequestError::Malformed(detail) => HttpResponse::error(400, "Bad Request", detail),
            RequestError::BadContentLength(value) => {
                HttpResponse::error(400, "Bad Request", &format!("bad content-length {value:?}"))
            }
            RequestError::DuplicateContentLength => {
                HttpResponse::error(400, "Bad Request", "duplicate content-length headers")
            }
            RequestError::HeadersTooLarge => HttpResponse::error(
                431,
                "Request Header Fields Too Large",
                "request line + headers exceed the server limit",
            ),
            RequestError::BodyTooLarge => HttpResponse::error(
                413,
                "Payload Too Large",
                "request body exceeds the configured limit",
            ),
            RequestError::UnsupportedTransfer => HttpResponse::error(
                501,
                "Not Implemented",
                "transfer-encoding is not supported; send content-length",
            ),
        }
    }
}

/// One HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Force `Connection: close` regardless of the request's preference.
    pub close: bool,
    /// Emit a `Retry-After: <seconds>` header (load-shedding responses).
    pub retry_after: Option<u32>,
}

impl HttpResponse {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            retry_after: None,
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: &str) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type: "text/plain",
            body: body.as_bytes().to_vec(),
            close: false,
            retry_after: None,
        }
    }

    /// A `200 OK` response with an arbitrary (binary) body.
    pub fn bytes(content_type: &'static str, body: Vec<u8>) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type,
            body,
            close: false,
            retry_after: None,
        }
    }

    /// An error response carrying `{"error": detail}`; errors always close
    /// the connection (a client that sent garbage has lost framing sync).
    pub fn error(status: u16, reason: &'static str, detail: &str) -> Self {
        let body = crawler::json::object(vec![(
            "error",
            crawler::json::Value::String(detail.to_string()),
        )])
        .render();
        HttpResponse {
            status,
            reason,
            content_type: "application/json",
            body: body.into_bytes(),
            close: status >= 400,
            retry_after: None,
        }
    }

    /// A `503 Service Unavailable` load-shed response with a `Retry-After`
    /// hint in seconds — the typed overload signal of the admission
    /// controller. Shed responses keep the connection open when `close` is
    /// `false`: a polite client backs off and reuses the connection rather
    /// than paying a reconnect against an already-loaded server.
    pub fn shed(retry_after: u32, detail: &str, close: bool) -> Self {
        let body = crawler::json::object(vec![
            ("error", crawler::json::Value::String(detail.to_string())),
            (
                "retry_after",
                crawler::json::Value::number_u64(u64::from(retry_after)),
            ),
        ])
        .render();
        HttpResponse {
            status: 503,
            reason: "Service Unavailable",
            content_type: "application/json",
            body: body.into_bytes(),
            close,
            retry_after: Some(retry_after),
        }
    }

    /// Serialise the response into an output buffer (the event loop's
    /// per-connection write queue). Returns whether the connection stays
    /// open afterwards.
    pub fn render_into(&self, out: &mut Vec<u8>, request_keep_alive: bool) -> bool {
        let keep_alive = request_keep_alive && !self.close;
        let retry_after = match self.retry_after {
            Some(seconds) => format!("Retry-After: {seconds}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            retry_after,
            if keep_alive { "keep-alive" } else { "close" },
        );
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        keep_alive
    }

    /// Serialise the response straight to a blocking stream (used by the
    /// doc examples and simple clients; the server renders into buffers).
    pub fn write_to(&self, stream: &mut TcpStream, request_keep_alive: bool) -> io::Result<()> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.render_into(&mut out, request_keep_alive);
        stream.write_all(&out)?;
        stream.flush()
    }
}

/// A half-parsed request: the head is complete, the body is still
/// arriving.
#[derive(Debug)]
struct PendingBody {
    request: HttpRequest,
    content_length: usize,
}

/// The push-based request parser one connection owns: the event loop
/// [`push`](RequestParser::push)es whatever bytes arrived and drains
/// complete requests with [`next`](RequestParser::next) — which never
/// blocks and never does I/O. Bytes past one request's body stay buffered
/// for the next (pipelining).
#[derive(Debug, Default)]
pub struct RequestParser {
    buffer: Vec<u8>,
    /// How far the head-terminator scan has advanced (so repeated `next`
    /// calls on a slowly arriving head stay linear, not quadratic).
    scanned: usize,
    pending: Option<PendingBody>,
}

impl RequestParser {
    /// A parser with nothing buffered.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Feed bytes read off the connection.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Whether the parser holds a partial request (buffered bytes or a
    /// head still waiting for its body) — at EOF this distinguishes a
    /// clean close from a truncated request.
    pub fn mid_request(&self) -> bool {
        self.pending.is_some() || !self.buffer.is_empty()
    }

    /// Discard everything buffered (after an error response the client has
    /// lost framing sync; any pipelined remainder is garbage).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.scanned = 0;
        self.pending = None;
    }

    /// The next complete request, `Ok(None)` when more bytes are needed,
    /// or a typed error for hostile input. After an error the parser must
    /// be [`reset`](RequestParser::reset) (the connection is closed anyway).
    pub fn next(&mut self, max_body_bytes: usize) -> Result<Option<HttpRequest>, RequestError> {
        if self.pending.is_none() && !self.parse_head(max_body_bytes)? {
            return Ok(None);
        }
        let pending = self.pending.as_ref().expect("head parsed above");
        if self.buffer.len() < pending.content_length {
            return Ok(None);
        }
        let PendingBody {
            mut request,
            content_length,
        } = self.pending.take().expect("checked above");
        request.body = self.buffer.drain(..content_length).collect();
        self.scanned = 0;
        Ok(Some(request))
    }

    /// Try to complete the head; `Ok(true)` when `pending` is now set.
    fn parse_head(&mut self, max_body_bytes: usize) -> Result<bool, RequestError> {
        // Resume the terminator scan where the last one stopped (backing
        // up 3 bytes in case the marker straddles the old boundary).
        let from = self.scanned.saturating_sub(3);
        let Some(header_end) = find_terminator(&self.buffer[from..]).map(|at| from + at) else {
            if self.buffer.len() > MAX_HEADER_BYTES {
                return Err(RequestError::HeadersTooLarge);
            }
            self.scanned = self.buffer.len();
            return Ok(false);
        };
        if header_end > MAX_HEADER_BYTES {
            return Err(RequestError::HeadersTooLarge);
        }

        let head = std::str::from_utf8(&self.buffer[..header_end])
            .map_err(|_| RequestError::Malformed("request head is not valid utf-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(method), Some(target), Some(version), None)
                    if !method.is_empty() && !target.is_empty() =>
                {
                    (method, target, version)
                }
                _ => {
                    return Err(RequestError::Malformed(format!(
                        "malformed request line {request_line:?}"
                    )))
                }
            };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => {
                return Err(RequestError::Malformed(format!(
                    "unsupported protocol {other:?}"
                )))
            }
        };
        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(RequestError::Malformed(format!(
                    "malformed header line {line:?}"
                )));
            };
            if name.is_empty() || name.contains(' ') {
                return Err(RequestError::Malformed(format!(
                    "malformed header name {name:?}"
                )));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let request = HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            http11,
            headers,
            body: Vec::new(),
        };
        if request.header("transfer-encoding").is_some() {
            return Err(RequestError::UnsupportedTransfer);
        }
        // Ambiguous body framing is the request-smuggling vector: a front
        // proxy honoring one Content-Length while we honor another desyncs
        // the connection. Any duplicate is rejected outright (RFC 9112
        // §6.3 requires rejecting differing values; identical duplicates
        // buy a client nothing).
        if request
            .headers
            .iter()
            .filter(|(name, _)| name == "content-length")
            .count()
            > 1
        {
            return Err(RequestError::DuplicateContentLength);
        }
        let content_length = match request.header("content-length") {
            // RFC 9112 framing is 1*DIGIT; `usize::from_str` alone would
            // also accept forms like `+17` that a conforming front proxy
            // rejects — another framing ambiguity, refused like the rest.
            // All-digit values that overflow `usize` land here too: no
            // declared length we cannot even represent is servable.
            Some(value) if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) => value
                .parse::<usize>()
                .map_err(|_| RequestError::BadContentLength(value.to_string()))?,
            Some(value) => return Err(RequestError::BadContentLength(value.to_string())),
            None => 0,
        };
        if content_length > max_body_bytes {
            return Err(RequestError::BodyTooLarge);
        }

        self.buffer.drain(..header_end + 4);
        self.scanned = 0;
        self.pending = Some(PendingBody {
            request,
            content_length,
        });
        Ok(true)
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|window| window == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Vec<HttpRequest>, RequestError> {
        let mut parser = RequestParser::new();
        parser.push(bytes);
        let mut requests = Vec::new();
        while let Some(request) = parser.next(4096)? {
            requests.push(request);
        }
        Ok(requests)
    }

    #[test]
    fn terminator_is_found_only_when_complete() {
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_terminator(b""), None);
    }

    #[test]
    fn parser_assembles_requests_incrementally() {
        let wire = b"POST /v1/decisions HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let mut parser = RequestParser::new();
        // Feed one byte at a time; the request completes exactly at the end.
        for (at, byte) in wire.iter().enumerate() {
            parser.push(std::slice::from_ref(byte));
            let parsed = parser.next(4096).expect("prefix never errors");
            if at + 1 < wire.len() {
                assert!(parsed.is_none(), "complete after {} bytes?", at + 1);
                assert!(parser.mid_request());
            } else {
                let request = parsed.expect("complete at final byte");
                assert_eq!(request.method, "POST");
                assert_eq!(request.body, b"body");
                assert!(!parser.mid_request());
            }
        }
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let requests = parse_all(
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi",
        )
        .expect("both requests valid");
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[0].target, "/healthz");
        assert_eq!(requests[1].body, b"hi");
    }

    #[test]
    fn hostile_content_lengths_map_to_typed_errors() {
        let overflow = format!("GET / HTTP/1.1\r\nContent-Length: {}0\r\n\r\n", usize::MAX);
        assert!(matches!(
            parse_all(overflow.as_bytes()),
            Err(RequestError::BadContentLength(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nContent-Length: +17\r\n\r\n"),
            Err(RequestError::BadContentLength(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi"),
            Err(RequestError::DuplicateContentLength)
        ));
    }

    #[test]
    fn error_responses_cover_every_client_fault() {
        assert_eq!(RequestError::Malformed("x".into()).response().status, 400);
        assert_eq!(
            RequestError::BadContentLength("1e9".into())
                .response()
                .status,
            400
        );
        assert_eq!(RequestError::DuplicateContentLength.response().status, 400);
        assert_eq!(RequestError::HeadersTooLarge.response().status, 431);
        assert_eq!(RequestError::BodyTooLarge.response().status, 413);
        assert_eq!(RequestError::UnsupportedTransfer.response().status, 501);
    }
}
