//! A minimal HTTP/1.1 client over a raw [`TcpStream`] — the one
//! implementation the integration tests, the fuzz suite, and
//! `bench_server` all drive the server with, so the wire framing is
//! parsed in exactly one place on the client side too.
//!
//! This is a *testing and benchmarking* utility, not a production client:
//! transport failures and malformed responses panic with context instead
//! of returning errors, because in every intended caller a broken
//! response IS the test failure.

use crate::wire::{self, BinaryRecord};
use crawler::json::Value;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use trackersift::Decision;

/// The client half of the `GET /v1/keys` interning handshake: the server's
/// key strings mapped back to their dense `u32` ids, scoped by the epoch
/// they were fetched under. Hot clients resolve their strings through this
/// once and then send id-form binary records (four `u32`s instead of four
/// length-prefixed strings per record).
#[derive(Debug)]
pub struct KeyTable {
    /// The key epoch the ids are valid under; sent back with every
    /// id-form request so a restored table rejects stale ids with `409`.
    pub epoch: u64,
    /// The published table version at fetch time.
    pub version: u64,
    ids: HashMap<String, u32>,
}

impl KeyTable {
    /// The interned id for a key string, if the server knows it.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the server had no interned keys at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A keep-alive HTTP/1.1 client connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server (no-delay, 10s read timeout).
    ///
    /// # Panics
    /// Panics if the connection cannot be established — see the
    /// [module docs](self) for why this client panics instead of erroring.
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to verdict server");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set client read timeout");
        // One write per request below, plus no-delay: without this, the
        // Nagle + delayed-ACK interaction adds ~40ms to every request.
        stream.set_nodelay(true).expect("set client nodelay");
        Client { stream }
    }

    /// Issue one request and read the full response; returns
    /// `(status, body)`. The connection stays open (keep-alive).
    ///
    /// # Panics
    /// Panics on transport failure or a malformed response.
    pub fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let (status, body) =
            self.request_bytes(method, target, None, body.unwrap_or("").as_bytes());
        (
            status,
            String::from_utf8(body).expect("utf-8 response body"),
        )
    }

    /// Issue one request with an arbitrary body (and optional
    /// `Content-Type`) and read the full response as raw bytes — the
    /// transport for the binary protocol. The connection stays open.
    ///
    /// # Panics
    /// Panics on transport failure or a malformed response.
    pub fn request_bytes(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> (u16, Vec<u8>) {
        let content_type = content_type
            .map(|value| format!("Content-Type: {value}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: verdicts\r\n{content_type}Content-Length: {}\r\n\r\n",
            body.len()
        );
        let mut request = head.into_bytes();
        request.extend_from_slice(body);
        self.stream.write_all(&request).expect("write request");
        self.read_response()
    }

    /// Complete the key-interning handshake: fetch `GET /v1/keys` and
    /// build the string → id table for id-form binary requests.
    ///
    /// # Panics
    /// Panics on transport failure or a malformed reply.
    pub fn fetch_keys(&mut self) -> KeyTable {
        let (status, body) = self.request("GET", "/v1/keys", None);
        assert_eq!(status, 200, "GET /v1/keys failed: {body}");
        let value = Value::parse(&body).expect("parse /v1/keys reply");
        let epoch = value
            .field("epoch")
            .and_then(|epoch| epoch.as_u64())
            .expect("keys epoch");
        let version = value
            .field("version")
            .and_then(|version| version.as_u64())
            .expect("keys version");
        let keys = value
            .field("keys")
            .and_then(|keys| keys.as_array())
            .expect("keys array");
        let mut ids = HashMap::with_capacity(keys.len());
        for (id, key) in keys.iter().enumerate() {
            ids.insert(key.as_str().expect("key string").to_string(), id as u32);
        }
        KeyTable {
            epoch,
            version,
            ids,
        }
    }

    /// Post one binary decision record and decode the reply; returns
    /// `(version, decision)`.
    ///
    /// # Panics
    /// Panics on a non-200 status (a stale epoch is a 409 — re-fetch the
    /// keys) or a malformed frame.
    pub fn decide_binary_single(
        &mut self,
        epoch: u64,
        record: &BinaryRecord<'_>,
    ) -> (u64, Decision) {
        let request = wire::encode_binary_single(epoch, record);
        let (status, body) = self.request_bytes(
            "POST",
            "/v1/decisions",
            Some(wire::BINARY_CONTENT_TYPE),
            &request,
        );
        assert_eq!(
            status,
            200,
            "binary decision failed: {}",
            String::from_utf8_lossy(&body)
        );
        wire::decode_binary_single_response(&body).expect("decode binary single response")
    }

    /// Post a binary decision batch and decode the reply; returns
    /// `(version, decisions)` in request order.
    ///
    /// # Panics
    /// Panics on a non-200 status or a malformed frame.
    pub fn decide_binary_batch(
        &mut self,
        epoch: u64,
        records: &[BinaryRecord<'_>],
    ) -> (u64, Vec<Decision>) {
        let request = wire::encode_binary_batch(epoch, records);
        let (status, body) = self.request_bytes(
            "POST",
            "/v1/decisions:batch",
            Some(wire::BINARY_CONTENT_TYPE),
            &request,
        );
        assert_eq!(
            status,
            200,
            "binary batch failed: {}",
            String::from_utf8_lossy(&body)
        );
        wire::decode_binary_batch_response(&body).expect("decode binary batch response")
    }

    /// Write raw bytes (for malformed-request tests), then read whatever
    /// the server sends until it closes (or times out). `None` when no
    /// parseable status line came back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Option<(u16, String)> {
        if self.stream.write_all(bytes).is_err() {
            return None;
        }
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&raw);
        let status: u16 = text.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()?;
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
        Some((status, body))
    }

    fn read_response(&mut self) -> (u16, Vec<u8>) {
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        // Read the head.
        let head_end = loop {
            if let Some(end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break end;
            }
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(
                n > 0,
                "server closed mid-response: {:?}",
                String::from_utf8_lossy(&raw)
            );
            raw.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(raw[..head_end].to_vec()).expect("utf-8 response head");
        let status: u16 = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("numeric content-length"))
            })
            .expect("content-length header");
        let mut body = raw[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "server closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        (status, body)
    }
}
