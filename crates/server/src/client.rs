//! A minimal HTTP/1.1 client over a raw [`TcpStream`] — the one
//! implementation the integration tests, the fuzz suite, and
//! `bench_server` all drive the server with, so the wire framing is
//! parsed in exactly one place on the client side too.
//!
//! This is a *testing and benchmarking* utility, not a production client:
//! transport failures and malformed responses panic with context instead
//! of returning errors, because in every intended caller a broken
//! response IS the test failure.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive HTTP/1.1 client connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server (no-delay, 10s read timeout).
    ///
    /// # Panics
    /// Panics if the connection cannot be established — see the
    /// [module docs](self) for why this client panics instead of erroring.
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to verdict server");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set client read timeout");
        // One write per request below, plus no-delay: without this, the
        // Nagle + delayed-ACK interaction adds ~40ms to every request.
        stream.set_nodelay(true).expect("set client nodelay");
        Client { stream }
    }

    /// Issue one request and read the full response; returns
    /// `(status, body)`. The connection stays open (keep-alive).
    ///
    /// # Panics
    /// Panics on transport failure or a malformed response.
    pub fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {target} HTTP/1.1\r\nHost: verdicts\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
        self.read_response()
    }

    /// Write raw bytes (for malformed-request tests), then read whatever
    /// the server sends until it closes (or times out). `None` when no
    /// parseable status line came back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Option<(u16, String)> {
        if self.stream.write_all(bytes).is_err() {
            return None;
        }
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&raw);
        let status: u16 = text.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()?;
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
        Some((status, body))
    }

    fn read_response(&mut self) -> (u16, String) {
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        // Read the head.
        let head_end = loop {
            if let Some(end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break end;
            }
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(
                n > 0,
                "server closed mid-response: {:?}",
                String::from_utf8_lossy(&raw)
            );
            raw.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(raw[..head_end].to_vec()).expect("utf-8 response head");
        let status: u16 = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("numeric content-length"))
            })
            .expect("content-length header");
        let mut body = raw[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "server closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        (
            status,
            String::from_utf8(body).expect("utf-8 response body"),
        )
    }
}
