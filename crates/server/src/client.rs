//! A minimal HTTP/1.1 client over a raw [`TcpStream`] — the one
//! implementation the integration tests, the fuzz suite, and
//! `bench_server` all drive the server with, so the wire framing is
//! parsed in exactly one place on the client side too.
//!
//! [`Client`] is a *testing and benchmarking* utility, not a production
//! client: transport failures and malformed responses panic with context
//! instead of returning errors, because in every intended caller a broken
//! response IS the test failure. For callers that need to survive a
//! flaky or overloaded server, [`RetryingClient`] wraps the same wire
//! framing in per-request timeouts and jittered exponential-backoff
//! retries that honor the server's `Retry-After` shed hint, bounded by a
//! lifetime retry budget so a dying server is never hammered forever.

use crate::wire::{self, BinaryRecord};
use crawler::json::Value;
use filterlist::FilterEngine;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use trackersift::frames;
use trackersift::{
    ApplyError, Decision, DeltaSnapshot, FollowerState, RevisionDiff, UrlRewriter, VerdictRevision,
    VerdictTable,
};

/// The client half of the `GET /v1/keys` interning handshake: the server's
/// key strings mapped back to their dense `u32` ids, scoped by the epoch
/// they were fetched under. Hot clients resolve their strings through this
/// once and then send id-form binary records (four `u32`s instead of four
/// length-prefixed strings per record).
#[derive(Debug)]
pub struct KeyTable {
    /// The key epoch the ids are valid under; sent back with every
    /// id-form request so a restored table rejects stale ids with `409`.
    pub epoch: u64,
    /// The published table version at fetch time.
    pub version: u64,
    ids: HashMap<String, u32>,
}

impl KeyTable {
    /// The interned id for a key string, if the server knows it.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the server had no interned keys at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Why a typed revision fetch ([`Client::fetch_revisions`],
/// [`Client::fetch_revision_diff`]) failed. Unlike the panicking decision
/// helpers, the revision helpers return errors: drift consumers poll
/// revision ranges that legitimately fall out of the bounded ring (`404`)
/// or get inverted by operator typos (`400`), and both deserve a typed
/// answer instead of a panic.
#[derive(Debug)]
pub enum RevisionFetchError {
    /// The server answered with a non-200 status; the body detail is kept.
    Status(u16, String),
    /// The exchange failed at the transport layer.
    Transport(io::Error),
    /// The `200` body did not parse as the expected canonical shape.
    Malformed(String),
}

impl fmt::Display for RevisionFetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevisionFetchError::Status(status, detail) => {
                write!(f, "server answered {status}: {detail}")
            }
            RevisionFetchError::Transport(error) => write!(f, "transport failed: {error}"),
            RevisionFetchError::Malformed(detail) => {
                write!(f, "malformed revision body: {detail}")
            }
        }
    }
}

impl std::error::Error for RevisionFetchError {}

/// Parse the `200` JSON body of `GET /v1/revisions` into the table
/// version and the revision ring.
pub fn parse_revision_list(body: &[u8]) -> Result<(u64, Vec<VerdictRevision>), RevisionFetchError> {
    let value = parse_json_body(body)?;
    frames::revision_list_from_value(&value)
        .map_err(|error| RevisionFetchError::Malformed(error.to_string()))
}

/// Parse the `200` JSON body of `GET /v1/revisions?diff=a..b`.
pub fn parse_revision_diff(body: &[u8]) -> Result<RevisionDiff, RevisionFetchError> {
    let value = parse_json_body(body)?;
    frames::revision_diff_from_value(&value)
        .map_err(|error| RevisionFetchError::Malformed(error.to_string()))
}

/// Parse a `GET /v1/snapshot?since=v` JSON body. The `200` delta and the
/// `410 Gone` full envelope share one canonical shape, so one parser
/// covers both; [`DeltaSnapshot::is_full`] tells them apart.
pub fn parse_delta_snapshot(body: &[u8]) -> Result<DeltaSnapshot, RevisionFetchError> {
    let value = parse_json_body(body)?;
    frames::delta_snapshot_from_value(&value)
        .map_err(|error| RevisionFetchError::Malformed(error.to_string()))
}

fn parse_json_body(body: &[u8]) -> Result<Value, RevisionFetchError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| RevisionFetchError::Malformed("body is not utf-8".to_string()))?;
    Value::parse(text).map_err(|error| RevisionFetchError::Malformed(error.to_string()))
}

/// One fully read response from the non-panicking request path.
#[derive(Debug)]
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// The server's `Retry-After` hint in seconds, present on shed
    /// (`503`) responses.
    pub retry_after: Option<u32>,
    /// The response body.
    pub body: Vec<u8>,
}

/// A keep-alive HTTP/1.1 client connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server (no-delay, 10s read timeout).
    ///
    /// # Panics
    /// Panics if the connection cannot be established — see the
    /// [module docs](self) for why this client panics instead of erroring.
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to verdict server");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set client read timeout");
        // One write per request below, plus no-delay: without this, the
        // Nagle + delayed-ACK interaction adds ~40ms to every request.
        stream.set_nodelay(true).expect("set client nodelay");
        Client { stream }
    }

    /// Connect with a bounded connect timeout, returning errors instead of
    /// panicking — the entry point for callers that must survive a server
    /// that is down or refusing connections.
    pub fn try_connect(addr: SocketAddr, connect_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bound every subsequent read *and* write on this connection (`None`
    /// blocks forever). A request that exceeds the bound fails with
    /// `WouldBlock`/`TimedOut` instead of hanging its caller.
    pub fn set_request_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Issue one request and read the full response; returns
    /// `(status, body)`. The connection stays open (keep-alive).
    ///
    /// # Panics
    /// Panics on transport failure or a malformed response.
    pub fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let (status, body) =
            self.request_bytes(method, target, None, body.unwrap_or("").as_bytes());
        (
            status,
            String::from_utf8(body).expect("utf-8 response body"),
        )
    }

    /// Issue one request with an arbitrary body (and optional
    /// `Content-Type`) and read the full response as raw bytes — the
    /// transport for the binary protocol. The connection stays open.
    ///
    /// # Panics
    /// Panics on transport failure or a malformed response.
    pub fn request_bytes(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> (u16, Vec<u8>) {
        let content_type = content_type
            .map(|value| format!("Content-Type: {value}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: verdicts\r\n{content_type}Content-Length: {}\r\n\r\n",
            body.len()
        );
        let mut request = head.into_bytes();
        request.extend_from_slice(body);
        self.stream.write_all(&request).expect("write request");
        self.read_response()
    }

    /// Complete the key-interning handshake: fetch `GET /v1/keys` and
    /// build the string → id table for id-form binary requests.
    ///
    /// # Panics
    /// Panics on transport failure or a malformed reply.
    pub fn fetch_keys(&mut self) -> KeyTable {
        let (status, body) = self.request("GET", "/v1/keys", None);
        assert_eq!(status, 200, "GET /v1/keys failed: {body}");
        let value = Value::parse(&body).expect("parse /v1/keys reply");
        let epoch = value
            .field("epoch")
            .and_then(|epoch| epoch.as_u64())
            .expect("keys epoch");
        let version = value
            .field("version")
            .and_then(|version| version.as_u64())
            .expect("keys version");
        let keys = value
            .field("keys")
            .and_then(|keys| keys.as_array())
            .expect("keys array");
        let mut ids = HashMap::with_capacity(keys.len());
        for (id, key) in keys.iter().enumerate() {
            ids.insert(key.as_str().expect("key string").to_string(), id as u32);
        }
        KeyTable {
            epoch,
            version,
            ids,
        }
    }

    /// Fetch the published revision ring (`GET /v1/revisions`); returns
    /// the table version and the ring, oldest first.
    pub fn fetch_revisions(&mut self) -> Result<(u64, Vec<VerdictRevision>), RevisionFetchError> {
        let response = self
            .try_request_bytes("GET", "/v1/revisions", None, b"")
            .map_err(RevisionFetchError::Transport)?;
        if response.status != 200 {
            return Err(RevisionFetchError::Status(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        parse_revision_list(&response.body)
    }

    /// Fetch the drift between two published versions
    /// (`GET /v1/revisions?diff=from..to`). An inverted range surfaces as
    /// [`RevisionFetchError::Status`] with `400`, a range outside the
    /// bounded ring as `404`.
    pub fn fetch_revision_diff(
        &mut self,
        from: u64,
        to: u64,
    ) -> Result<RevisionDiff, RevisionFetchError> {
        let target = format!("/v1/revisions?diff={from}..{to}");
        let response = self
            .try_request_bytes("GET", &target, None, b"")
            .map_err(RevisionFetchError::Transport)?;
        if response.status != 200 {
            return Err(RevisionFetchError::Status(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        parse_revision_diff(&response.body)
    }

    /// [`Client::fetch_revisions`] over the binary framing: the request
    /// carries `Accept: application/x-trackersift-verdict` and the reply
    /// decodes with [`frames::decode_revision_list`].
    pub fn fetch_revisions_binary(
        &mut self,
    ) -> Result<(u64, Vec<VerdictRevision>), RevisionFetchError> {
        let response = self.get_binary("/v1/revisions")?;
        frames::decode_revision_list(&response.body)
            .map_err(|error| RevisionFetchError::Malformed(error.to_string()))
    }

    /// [`Client::fetch_revision_diff`] over the binary framing.
    pub fn fetch_revision_diff_binary(
        &mut self,
        from: u64,
        to: u64,
    ) -> Result<RevisionDiff, RevisionFetchError> {
        let target = format!("/v1/revisions?diff={from}..{to}");
        let response = self.get_binary(&target)?;
        frames::decode_revision_diff(&response.body)
            .map_err(|error| RevisionFetchError::Malformed(error.to_string()))
    }

    /// Fetch the dirty cells since published version `since`
    /// (`GET /v1/snapshot?since=v`). Both a `200` (delta) and a
    /// `410 Gone` (the baseline aged out of the bounded ring; the body is
    /// a full snapshot envelope) parse into a [`DeltaSnapshot`] and
    /// return `Ok` — [`DeltaSnapshot::is_full`] tells which arrived, and
    /// a full one means the follower must re-bootstrap. Any other status
    /// is a [`RevisionFetchError::Status`].
    pub fn fetch_snapshot_since(
        &mut self,
        since: u64,
    ) -> Result<DeltaSnapshot, RevisionFetchError> {
        let target = format!("/v1/snapshot?since={since}");
        let response = self
            .try_request_bytes("GET", &target, None, b"")
            .map_err(RevisionFetchError::Transport)?;
        match response.status {
            200 | 410 => parse_delta_snapshot(&response.body),
            status => Err(RevisionFetchError::Status(
                status,
                String::from_utf8_lossy(&response.body).into_owned(),
            )),
        }
    }

    /// [`Client::fetch_snapshot_since`] over the binary framing.
    pub fn fetch_snapshot_since_binary(
        &mut self,
        since: u64,
    ) -> Result<DeltaSnapshot, RevisionFetchError> {
        let target = format!("/v1/snapshot?since={since}");
        let head = format!(
            "GET {target} HTTP/1.1\r\nHost: verdicts\r\nAccept: {}\r\nContent-Length: 0\r\n\r\n",
            wire::BINARY_CONTENT_TYPE
        );
        self.stream
            .write_all(head.as_bytes())
            .map_err(RevisionFetchError::Transport)?;
        let response = self
            .try_read_response()
            .map_err(RevisionFetchError::Transport)?;
        match response.status {
            200 | 410 => frames::decode_delta_snapshot(&response.body)
                .map_err(|error| RevisionFetchError::Malformed(error.to_string())),
            status => Err(RevisionFetchError::Status(
                status,
                String::from_utf8_lossy(&response.body).into_owned(),
            )),
        }
    }

    /// Issue a `GET` asking for the binary representation and insist on a
    /// 200.
    fn get_binary(&mut self, target: &str) -> Result<RawResponse, RevisionFetchError> {
        let head = format!(
            "GET {target} HTTP/1.1\r\nHost: verdicts\r\nAccept: {}\r\nContent-Length: 0\r\n\r\n",
            wire::BINARY_CONTENT_TYPE
        );
        self.stream
            .write_all(head.as_bytes())
            .map_err(RevisionFetchError::Transport)?;
        let response = self
            .try_read_response()
            .map_err(RevisionFetchError::Transport)?;
        if response.status != 200 {
            return Err(RevisionFetchError::Status(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        Ok(response)
    }

    /// Post one binary decision record and decode the reply; returns
    /// `(version, decision)`.
    ///
    /// # Panics
    /// Panics on a non-200 status (a stale epoch is a 409 — re-fetch the
    /// keys) or a malformed frame.
    pub fn decide_binary_single(
        &mut self,
        epoch: u64,
        record: &BinaryRecord<'_>,
    ) -> (u64, Decision) {
        let request = wire::encode_binary_single(epoch, record);
        let (status, body) = self.request_bytes(
            "POST",
            "/v1/decisions",
            Some(wire::BINARY_CONTENT_TYPE),
            &request,
        );
        assert_eq!(
            status,
            200,
            "binary decision failed: {}",
            String::from_utf8_lossy(&body)
        );
        wire::decode_binary_single_response(&body).expect("decode binary single response")
    }

    /// Post a binary decision batch and decode the reply; returns
    /// `(version, decisions)` in request order.
    ///
    /// # Panics
    /// Panics on a non-200 status or a malformed frame.
    pub fn decide_binary_batch(
        &mut self,
        epoch: u64,
        records: &[BinaryRecord<'_>],
    ) -> (u64, Vec<Decision>) {
        let request = wire::encode_binary_batch(epoch, records);
        let (status, body) = self.request_bytes(
            "POST",
            "/v1/decisions:batch",
            Some(wire::BINARY_CONTENT_TYPE),
            &request,
        );
        assert_eq!(
            status,
            200,
            "binary batch failed: {}",
            String::from_utf8_lossy(&body)
        );
        wire::decode_binary_batch_response(&body).expect("decode binary batch response")
    }

    /// Write raw bytes (for malformed-request tests), then read whatever
    /// the server sends until it closes (or times out). `None` when no
    /// parseable status line came back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Option<(u16, String)> {
        if self.stream.write_all(bytes).is_err() {
            return None;
        }
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&raw);
        let status: u16 = text.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()?;
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
        Some((status, body))
    }

    /// The non-panicking twin of [`Client::request_bytes`]: issue one
    /// request, read the full response (including the `Retry-After` shed
    /// hint), and surface transport or framing problems as errors.
    pub fn try_request_bytes(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<RawResponse> {
        let content_type = content_type
            .map(|value| format!("Content-Type: {value}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: verdicts\r\n{content_type}Content-Length: {}\r\n\r\n",
            body.len()
        );
        let mut request = head.into_bytes();
        request.extend_from_slice(body);
        self.stream.write_all(&request)?;
        self.try_read_response()
    }

    fn read_response(&mut self) -> (u16, Vec<u8>) {
        match self.try_read_response() {
            Ok(response) => (response.status, response.body),
            Err(error) => panic!("read verdict-server response: {error}"),
        }
    }

    fn try_read_response(&mut self) -> io::Result<RawResponse> {
        let malformed = |detail: String| io::Error::new(io::ErrorKind::InvalidData, detail);
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        // Read the head.
        let head_end = loop {
            if let Some(end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break end;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed(format!(
                    "server closed mid-response: {:?}",
                    String::from_utf8_lossy(&raw)
                )));
            }
            raw.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&raw[..head_end])
            .map_err(|_| malformed("non-utf-8 response head".to_string()))?;
        let status: u16 = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| malformed(format!("malformed status line in {head:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut retry_after: Option<u32> = None;
        for line in head.lines() {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| malformed(format!("bad content-length {value:?}")))?,
                );
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
        let content_length =
            content_length.ok_or_else(|| malformed("missing content-length".to_string()))?;
        let mut body = raw[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed("server closed mid-body".to_string()));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        Ok(RawResponse {
            status,
            retry_after,
            body,
        })
    }
}

/// Retry and timeout policy for a [`RetryingClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Bound on establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Bound on each individual request/response exchange.
    pub request_timeout: Duration,
    /// Attempts per request (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep — also caps an honored
    /// `Retry-After` hint, so a server asking for minutes cannot stall a
    /// test-scale caller.
    pub max_backoff: Duration,
    /// Lifetime retry budget across all requests of this client. Once
    /// spent, every request gets exactly one attempt — the client-side
    /// brake against retry storms amplifying an overload.
    pub retry_budget: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            retry_budget: 64,
            seed: 0x5eed_5eed_5eed_5eed,
        }
    }
}

/// A self-healing client: reconnects on transport errors, retries failed
/// exchanges and shed (`503`) responses with jittered exponential backoff
/// (honoring the server's `Retry-After` hint), and gives up cleanly when
/// its [`RetryPolicy::retry_budget`] runs out.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<Client>,
    /// xorshift64 state for backoff jitter.
    jitter: u64,
    budget_left: u32,
    retries_spent: u64,
}

impl RetryingClient {
    /// A client for `addr`; nothing connects until the first request.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RetryingClient {
        RetryingClient {
            addr,
            jitter: policy.seed | 1,
            budget_left: policy.retry_budget,
            retries_spent: 0,
            policy,
            conn: None,
        }
    }

    /// Total retries this client has performed (across all requests).
    pub fn retries_spent(&self) -> u64 {
        self.retries_spent
    }

    /// Issue one request, retrying per the policy. Returns the final
    /// response — which may still be a `503` if the budget or attempt
    /// limit ran out while the server was shedding — or the final
    /// transport error.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<RawResponse> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self.attempt_once(method, target, content_type, body);
            let retry_hint = match &result {
                // Only a shed response is worth retrying among successful
                // exchanges: other statuses (200, 4xx) are final answers.
                Ok(response) if response.status == 503 => Some(
                    response
                        .retry_after
                        .map(|s| Duration::from_secs(u64::from(s))),
                ),
                Ok(_) => None,
                Err(_) => {
                    // The connection state is unknown after a transport
                    // error; rebuild it on the next attempt.
                    self.conn = None;
                    Some(None)
                }
            };
            let Some(hint) = retry_hint else {
                return result;
            };
            if attempt >= self.policy.max_attempts || self.budget_left == 0 {
                return result;
            }
            self.budget_left -= 1;
            self.retries_spent += 1;
            thread::sleep(self.backoff(attempt, hint));
        }
    }

    fn attempt_once(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<RawResponse> {
        if self.conn.is_none() {
            let mut client = Client::try_connect(self.addr, self.policy.connect_timeout)?;
            client.set_request_timeout(Some(self.policy.request_timeout))?;
            self.conn = Some(client);
        }
        let conn = self.conn.as_mut().expect("connection just established");
        conn.try_request_bytes(method, target, content_type, body)
    }

    /// The sleep before retry number `attempt`: exponential from
    /// `base_backoff` with up-to-50% deterministic jitter, overridden by
    /// the server's `Retry-After` when given — both capped at
    /// `max_backoff`.
    fn backoff(&mut self, attempt: u32, hint: Option<Duration>) -> Duration {
        if let Some(hint) = hint {
            return hint.min(self.policy.max_backoff);
        }
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.max_backoff);
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let jitter_micros = if exp.as_micros() > 1 {
            self.jitter % (exp.as_micros() as u64 / 2 + 1)
        } else {
            0
        };
        exp + Duration::from_micros(jitter_micros)
    }
}

/// Why one [`ReplicaClient::sync`] round failed.
#[derive(Debug)]
pub enum SyncError {
    /// The snapshot fetch failed: transport, a non-`200`/`410` status, or
    /// a malformed body.
    Fetch(RevisionFetchError),
    /// The fetched delta did not chain onto the local version — the
    /// follower state is untouched; the next round re-fetches from the
    /// actual local version.
    Apply(ApplyError),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::Fetch(error) => write!(f, "snapshot fetch failed: {error}"),
            SyncError::Apply(error) => write!(f, "snapshot apply failed: {error}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// What one [`ReplicaClient::sync`] round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// The local version before the round.
    pub from: u64,
    /// The committed primary version held after applying.
    pub to: u64,
    /// Whether the round applied a full (re)bootstrap envelope — either
    /// the very first sync or a `410 Gone` after falling behind the ring.
    pub full: bool,
    /// Per-key class transitions the round applied.
    pub changes: u64,
}

/// The follower loop in client form: bootstrap from a primary's full
/// snapshot, then poll `GET /v1/snapshot?since=<local version>` and apply
/// each delta into a local [`FollowerState`].
///
/// Every fetch goes through a [`RetryingClient`], so shed (`503`)
/// responses and transport drops back off and retry under the configured
/// [`RetryPolicy`]. A `410 Gone` is **not** retried — its body already
/// carries the full snapshot the follower needs, so the same round trip
/// that reported the aged-out baseline also re-bootstraps.
///
/// [`ReplicaClient::table`] materializes the applied state as a
/// [`VerdictTable`] at the primary's exact committed version — a replica
/// never serves a torn or interpolated state.
///
/// ```
/// use trackersift::Sifter;
/// use trackersift_server::client::{Client, ReplicaClient, RetryPolicy};
/// use trackersift_server::{ServerConfig, VerdictServer};
///
/// // A primary that has learned one tracking chain.
/// let (writer, _reader) = Sifter::builder().build_concurrent();
/// let config = ServerConfig { workers: 1, ..ServerConfig::ephemeral() };
/// let server = VerdictServer::start(writer, config).unwrap();
/// let mut client = Client::connect(server.local_addr());
/// let body = concat!(
///     r#"{"observations":[{"domain":"ads.com","hostname":"px.ads.com","#,
///     r#""script":"https://pub.com/a.js","method":"send","tracking":true}]}"#,
/// );
/// client.request("POST", "/v1/observations", Some(body));
/// client.request("POST", "/v1/commit", None);
///
/// // A follower syncs: the first round bootstraps (full snapshot), later
/// // rounds apply deltas.
/// let mut replica = ReplicaClient::new(server.local_addr(), RetryPolicy::default(), None, None);
/// let report = replica.sync().unwrap();
/// assert_eq!(report.to, replica.version());
/// assert_eq!(replica.table().version(), report.to);
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct ReplicaClient {
    http: RetryingClient,
    state: FollowerState,
}

impl ReplicaClient {
    /// A follower of the primary at `addr`. The filter engine and URL
    /// rewriter are attached locally (they are not shipped over the
    /// wire); pass the same ones the primary serves with for identical
    /// engine-sourced decisions.
    pub fn new(
        addr: SocketAddr,
        policy: RetryPolicy,
        engine: Option<Arc<FilterEngine>>,
        rewriter: Option<Arc<UrlRewriter>>,
    ) -> ReplicaClient {
        ReplicaClient {
            http: RetryingClient::new(addr, policy),
            state: FollowerState::new(engine, rewriter),
        }
    }

    /// The committed primary version this follower currently holds.
    pub fn version(&self) -> u64 {
        self.state.version()
    }

    /// Full-snapshot applications so far (the first sync plus every
    /// `410`-triggered re-bootstrap).
    pub fn bootstraps(&self) -> u64 {
        self.state.bootstraps()
    }

    /// One poll round: fetch the delta since the local version and apply
    /// it. Returns what changed; on [`SyncError::Apply`] the local state
    /// is untouched and the next round self-corrects by fetching from the
    /// still-current local version.
    pub fn sync(&mut self) -> Result<SyncReport, SyncError> {
        let from = self.state.version();
        let target = format!("/v1/snapshot?since={from}");
        let response = self
            .http
            .request("GET", &target, None, b"")
            .map_err(|error| SyncError::Fetch(RevisionFetchError::Transport(error)))?;
        let delta = match response.status {
            200 | 410 => parse_delta_snapshot(&response.body).map_err(SyncError::Fetch)?,
            status => {
                return Err(SyncError::Fetch(RevisionFetchError::Status(
                    status,
                    String::from_utf8_lossy(&response.body).into_owned(),
                )))
            }
        };
        let full = delta.is_full();
        let changes = delta.changes.len() as u64;
        self.state.apply(&delta).map_err(SyncError::Apply)?;
        Ok(SyncReport {
            from,
            to: self.state.version(),
            full,
            changes,
        })
    }

    /// Materialize the applied state as a [`VerdictTable`] at the exact
    /// committed primary version last synced.
    pub fn table(&mut self) -> VerdictTable {
        self.state.table()
    }

    /// Total retries the underlying [`RetryingClient`] has spent.
    pub fn retries_spent(&self) -> u64 {
        self.http.retries_spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackersift::{ChangeKind, Classification, Granularity, RevisionChange};

    /// Golden fixture: the canonical `GET /v1/revisions` body for a ring
    /// of two revisions (an add, then a flip + a removal).
    const REVISION_LIST_FIXTURE: &str = concat!(
        r#"{"version":3,"revisions":["#,
        r#"{"version":2,"changes":[{"granularity":"Script","key":"https://cdn.t.io/a.js","added":"tracking"}]},"#,
        r#"{"version":3,"changes":[{"granularity":"Domain","key":"t.io","from":"mixed","to":"tracking"},"#,
        r#"{"granularity":"Hostname","key":"px.t.io","removed":"functional"}]}"#,
        r#"]}"#
    );

    /// Golden fixture: the canonical `GET /v1/revisions?diff=1..3` body.
    const REVISION_DIFF_FIXTURE: &str = concat!(
        r#"{"from":1,"to":3,"changes":["#,
        r#"{"granularity":"Domain","key":"t.io","from":"mixed","to":"tracking"},"#,
        r#"{"granularity":"Script","key":"https://cdn.t.io/a.js","added":"tracking"}"#,
        r#"]}"#
    );

    #[test]
    fn revision_list_fixture_parses() {
        let (version, ring) =
            parse_revision_list(REVISION_LIST_FIXTURE.as_bytes()).expect("fixture parses");
        assert_eq!(version, 3);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring[0].version(), 2);
        assert_eq!(
            ring[0].changes(),
            &[RevisionChange::new(
                Granularity::Script,
                "https://cdn.t.io/a.js",
                ChangeKind::Added(Classification::Tracking),
            )]
        );
        assert_eq!(ring[1].version(), 3);
        assert_eq!(ring[1].changes().len(), 2);
        // Round trip: re-rendering the parsed ring is byte-identical.
        let shared: Vec<_> = ring.into_iter().map(std::sync::Arc::new).collect();
        assert_eq!(
            frames::revision_list_value(3, &shared).render(),
            REVISION_LIST_FIXTURE
        );
    }

    #[test]
    fn revision_diff_fixture_parses() {
        let diff = parse_revision_diff(REVISION_DIFF_FIXTURE.as_bytes()).expect("fixture parses");
        assert_eq!((diff.from, diff.to), (1, 3));
        assert_eq!(diff.changes.len(), 2);
        assert_eq!(
            diff.changes[0].kind,
            ChangeKind::Flipped(Classification::Mixed, Classification::Tracking)
        );
        assert_eq!(
            frames::revision_diff_value(&diff).render(),
            REVISION_DIFF_FIXTURE
        );
    }

    #[test]
    fn malformed_revision_bodies_are_typed_errors() {
        let cases: [&[u8]; 4] = [
            b"\xff\xfe not utf-8",
            b"{\"version\":3",
            br#"{"version":3,"revisions":[{"version":1,"changes":[{"granularity":"Planet","key":"x","added":"tracking"}]}]}"#,
            br#"{"revisions":[]}"#,
        ];
        for body in cases {
            assert!(matches!(
                parse_revision_list(body),
                Err(RevisionFetchError::Malformed(_))
            ));
        }
        assert!(matches!(
            parse_revision_diff(br#"{"from":2,"to":1,"changes":"what"}"#),
            Err(RevisionFetchError::Malformed(_))
        ));
    }

    #[test]
    fn backoff_grows_exponentially_jittered_and_capped() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(addr, policy);
        let first = client.backoff(1, None);
        assert!(first >= Duration::from_millis(10) && first <= Duration::from_millis(15));
        let second = client.backoff(2, None);
        assert!(second >= Duration::from_millis(20) && second <= Duration::from_millis(30));
        // Attempt 40 would be 2^39 × base without the cap.
        let late = client.backoff(40, None);
        assert!(late <= Duration::from_millis(150));
        // A Retry-After hint wins but is still capped.
        assert_eq!(
            client.backoff(1, Some(Duration::from_secs(3600))),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn budget_exhaustion_stops_retrying_against_a_dead_server() {
        // Nothing listens on port 1, so every attempt fails to connect.
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let policy = RetryPolicy {
            connect_timeout: Duration::from_millis(50),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            max_attempts: 3,
            retry_budget: 3,
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(addr, policy);
        assert!(client.request("GET", "/healthz", None, b"").is_err());
        assert_eq!(client.retries_spent(), 2, "max_attempts bounds one request");
        assert!(client.request("GET", "/healthz", None, b"").is_err());
        assert_eq!(client.retries_spent(), 3, "lifetime budget caps the rest");
        assert!(client.request("GET", "/healthz", None, b"").is_err());
        assert_eq!(client.retries_spent(), 3, "budget spent: single attempts");
    }
}
