//! The TrackerSift verdict server: enforcement decisions over the wire.
//!
//! Everything before this crate lives in-process — nothing could ask
//! "block, allow, surrogate, or observe?" without linking `trackersift`.
//! This crate puts a process boundary around the serving API: a
//! dependency-free HTTP/1.1 server over [`std::net::TcpListener`] built
//! directly on the concurrent split from `trackersift::concurrent`:
//!
//! * a **fixed worker pool**, each worker owning a cloned
//!   [`SifterReader`] — the decision path (`POST /v1/decisions`) touches
//!   no lock: accept, parse, pin the published table, decide, respond;
//! * a single **admin thread** owning the [`SifterWriter`]; observation
//!   ingest, commits, and snapshot import/export are serialised through a
//!   channel to it, and every commit publishes atomically to all workers;
//! * a hand-rolled HTTP layer ([`http`]) and JSON wire format ([`wire`])
//!   over the in-tree `crawler::json` codec — the container has no
//!   registry access, and a verdict server needs very little HTTP.
//!
//! # Endpoints
//!
//! | endpoint | role |
//! |---|---|
//! | `POST /v1/decisions` | one enforcement decision (lock-free) |
//! | `POST /v1/decisions:batch` | many decisions from one pinned table |
//! | `POST /v1/observations` | buffer observations into the writer |
//! | `POST /v1/commit` | fold observations in + publish atomically |
//! | `GET /v1/snapshot` | export the trained state (versioned JSON) |
//! | `PUT /v1/snapshot` | validate + restore a snapshot, publish atomically |
//! | `GET /v1/stats` | [`ServiceStats`] + per-worker request counters |
//! | `GET /healthz` | liveness probe |
//!
//! # Example
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use trackersift::Sifter;
//! use trackersift_server::{ServerConfig, VerdictServer};
//!
//! let (mut writer, _reader) = Sifter::builder().build_concurrent();
//! writer.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
//! writer.commit();
//!
//! let server = VerdictServer::start(writer, ServerConfig::ephemeral()).unwrap();
//! let mut stream = TcpStream::connect(server.local_addr()).unwrap();
//! let body = r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#;
//! write!(
//!     stream,
//!     "POST /v1/decisions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! stream.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains(r#""action":"block""#));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod http;
pub mod wire;

use crawler::json::{object, Value};
use http::{Connection, HttpRequest, HttpResponse};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use trackersift::{
    CommitStats, ObserveOutcome, ServiceStats, SifterReader, SifterSnapshot, SifterWriter,
};
use wire::{DecisionMessage, ObservationMessage};

/// Configuration of a [`VerdictServer`].
///
/// ```
/// use trackersift_server::ServerConfig;
///
/// // An ephemeral localhost port, 2 workers, tight limits — the test shape.
/// let config = ServerConfig {
///     workers: 2,
///     max_body_bytes: 64 * 1024,
///     ..ServerConfig::ephemeral()
/// };
/// assert_eq!(config.addr, "127.0.0.1:0");
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Number of serving workers, each with its own lock-free
    /// [`SifterReader`] handle. Clamped to at least 1.
    pub workers: usize,
    /// Maximum accepted request body, in bytes (larger requests get `413`).
    pub max_body_bytes: usize,
    /// Per-read socket timeout; a stalled client releases its worker after
    /// this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8377".to_string(),
            workers: 4,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// A config bound to an ephemeral localhost port — what tests and
    /// examples use so parallel servers never collide.
    pub fn ephemeral() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }
}

/// Per-worker serving counters, readable lock-free from any thread.
#[derive(Debug, Default)]
struct WorkerMetrics {
    /// Requests this worker parsed successfully.
    requests: AtomicU64,
    /// Decisions this worker served (batch requests count every element).
    decisions: AtomicU64,
    /// 4xx/5xx responses this worker produced.
    errors: AtomicU64,
}

/// Work routed to the admin thread (the single [`SifterWriter`] owner).
enum AdminMsg {
    Observe(Vec<ObservationMessage>, Sender<(u64, u64, u64)>),
    Commit(Sender<(CommitStats, u64)>),
    Export(Sender<String>),
    Import(Box<SifterSnapshot>, Sender<Result<(u64, u64, u64), String>>),
    Stats(Sender<ServiceStats>),
}

/// A running verdict server; dropping (or [`VerdictServer::shutdown`])
/// stops the workers and joins every thread.
#[derive(Debug)]
pub struct VerdictServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
}

impl VerdictServer {
    /// Bind the listener, spawn the worker pool (one cloned
    /// [`SifterReader`] each) and the admin thread (sole owner of the
    /// [`SifterWriter`]), and start serving.
    pub fn start(writer: SifterWriter, config: ServerConfig) -> io::Result<VerdictServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let worker_count = config.workers.max(1);
        let metrics: Arc<Vec<WorkerMetrics>> = Arc::new(
            (0..worker_count)
                .map(|_| WorkerMetrics::default())
                .collect(),
        );
        let reader = writer.reader();
        let (admin_tx, admin_rx) = mpsc::channel();
        let admin = thread::Builder::new()
            .name("verdict-admin".to_string())
            .spawn(move || admin_loop(writer, admin_rx))?;

        // Build the handle before spawning workers so a mid-startup
        // failure (fd exhaustion on try_clone, spawn refusal) tears down
        // whatever already started instead of leaking live threads on a
        // bound port.
        let mut server = VerdictServer {
            addr,
            stop,
            workers: Vec::with_capacity(worker_count),
            admin: Some(admin),
        };
        let spawned = (|| -> io::Result<()> {
            for index in 0..worker_count {
                let worker = Worker {
                    listener: listener.try_clone()?,
                    reader: reader.clone(),
                    admin: admin_tx.clone(),
                    stop: Arc::clone(&server.stop),
                    metrics: Arc::clone(&metrics),
                    index,
                    max_body_bytes: config.max_body_bytes,
                    read_timeout: config.read_timeout,
                };
                server.workers.push(
                    thread::Builder::new()
                        .name(format!("verdict-worker-{index}"))
                        .spawn(move || worker.run())?,
                );
            }
            Ok(())
        })();
        // The workers hold the only remaining admin senders: when they
        // exit, the admin loop's receiver disconnects and the admin thread
        // exits. (Dropped before any join, or the admin would never see
        // the disconnect.)
        drop(admin_tx);
        match spawned {
            Ok(()) => Ok(server),
            Err(error) => {
                server.stop_and_join();
                Err(error)
            }
        }
    }

    /// The bound address (resolve the actual port of an ephemeral bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the workers, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Each blocked accept needs one wake-up connection.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(admin) = self.admin.take() {
            let _ = admin.join();
        }
    }
}

impl Drop for VerdictServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The admin thread: applies every mutation through the single writer, so
/// commits and snapshot swaps are serialised and published atomically.
fn admin_loop(mut writer: SifterWriter, rx: mpsc::Receiver<AdminMsg>) {
    while let Ok(message) = rx.recv() {
        match message {
            AdminMsg::Observe(observations, reply) => {
                let mut accepted = 0u64;
                let mut skipped = 0u64;
                for observation in observations {
                    match observation {
                        ObservationMessage::Parts {
                            domain,
                            hostname,
                            script,
                            method,
                            tracking,
                        } => {
                            writer.observe_parts(&domain, &hostname, &script, &method, tracking);
                            accepted += 1;
                        }
                        ObservationMessage::Url {
                            url,
                            source_hostname,
                            resource_type,
                            script,
                            method,
                        } => {
                            match writer.observe_url(
                                &url,
                                &source_hostname,
                                resource_type,
                                &script,
                                &method,
                            ) {
                                ObserveOutcome::Observed(_) => accepted += 1,
                                ObserveOutcome::NoEngine | ObserveOutcome::InvalidUrl => {
                                    skipped += 1
                                }
                            }
                        }
                    }
                }
                let _ = reply.send((accepted, skipped, writer.sifter().pending()));
            }
            AdminMsg::Commit(reply) => {
                let stats = writer.commit();
                let _ = reply.send((stats, writer.published_version()));
            }
            AdminMsg::Export(reply) => {
                let _ = reply.send(writer.snapshot().to_json_string());
            }
            AdminMsg::Import(snapshot, reply) => {
                let result = writer
                    .restore_snapshot(&snapshot)
                    .map(|dropped_pending| {
                        (
                            writer.published_version(),
                            writer.sifter().observed(),
                            dropped_pending,
                        )
                    })
                    .map_err(|error| error.to_string());
                let _ = reply.send(result);
            }
            AdminMsg::Stats(reply) => {
                let _ = reply.send(writer.service_stats());
            }
        }
    }
}

/// One serving worker: accepts connections and answers requests, touching
/// only its own reader handle (and the admin channel for write endpoints).
struct Worker {
    listener: TcpListener,
    reader: SifterReader,
    admin: Sender<AdminMsg>,
    stop: Arc<AtomicBool>,
    metrics: Arc<Vec<WorkerMetrics>>,
    index: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
}

impl Worker {
    fn run(self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    // A persistent accept failure (e.g. fd exhaustion)
                    // must not become a hot spin across the whole pool:
                    // back off briefly so established connections can
                    // drain and release descriptors.
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            self.serve_connection(stream);
        }
    }

    fn serve_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.read_timeout));
        let _ = stream.set_nodelay(true);
        let mut connection = Connection::new(stream);
        loop {
            match connection.read_request(self.max_body_bytes) {
                Ok(request) => {
                    self.metrics[self.index]
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    let keep_alive = request.keep_alive();
                    let response = self.route(&request);
                    if response.status >= 400 {
                        self.metrics[self.index]
                            .errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let close = response.close || !keep_alive;
                    if response
                        .write_to(connection.stream_mut(), keep_alive)
                        .is_err()
                        || close
                        || self.stop.load(Ordering::SeqCst)
                    {
                        return;
                    }
                }
                Err(error) => {
                    if let Some(response) = error.response() {
                        self.metrics[self.index]
                            .errors
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = response.write_to(connection.stream_mut(), false);
                    }
                    return;
                }
            }
        }
    }

    fn route(&self, request: &HttpRequest) -> HttpResponse {
        match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/healthz") => HttpResponse::text("ok"),
            ("POST", "/v1/decisions") => self.decide_single(request),
            ("POST", "/v1/decisions:batch") => self.decide_batch(request),
            ("POST", "/v1/observations") => self.observe(request),
            ("POST", "/v1/commit") => self.commit(),
            ("GET", "/v1/snapshot") => self.export_snapshot(),
            ("PUT", "/v1/snapshot") => self.import_snapshot(request),
            ("GET", "/v1/stats") => self.stats(),
            (
                _,
                "/healthz"
                | "/v1/decisions"
                | "/v1/decisions:batch"
                | "/v1/observations"
                | "/v1/commit"
                | "/v1/snapshot"
                | "/v1/stats",
            ) => HttpResponse::error(
                405,
                "Method Not Allowed",
                &format!("{} does not support {}", request.target, request.method),
            ),
            _ => HttpResponse::error(404, "Not Found", &format!("no route {}", request.target)),
        }
    }

    /// Parse a JSON request body (→ 400 on failure).
    fn parse_body(request: &HttpRequest) -> Result<Value, HttpResponse> {
        let text = std::str::from_utf8(&request.body).map_err(|_| {
            HttpResponse::error(400, "Bad Request", "request body is not valid utf-8")
        })?;
        Value::parse(text)
            .map_err(|error| HttpResponse::error(400, "Bad Request", &error.to_string()))
    }

    fn decide_single(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let message = match DecisionMessage::from_json_value(&body) {
            Ok(message) => message,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        // The lock-free hot path: one pin serves the decision, and the
        // reported version is exactly the pinned table's.
        let pin = self.reader.pin();
        let decision = pin.decide(&message.as_request());
        let version = pin.version();
        drop(pin);
        self.metrics[self.index]
            .decisions
            .fetch_add(1, Ordering::Relaxed);
        HttpResponse::json(
            object(vec![
                ("version", Value::number_u64(version)),
                ("decision", wire::decision_to_json(&decision)),
            ])
            .render(),
        )
    }

    fn decide_batch(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let rows = match body.field("requests").and_then(|rows| rows.as_array()) {
            Ok(rows) => rows,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        let mut messages = Vec::with_capacity(rows.len());
        for row in rows {
            match DecisionMessage::from_json_value(row) {
                Ok(message) => messages.push(message),
                Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
            }
        }
        // One pin covers the whole batch: every decision (surrogate
        // payloads included) reflects exactly one committed table version.
        let pin = self.reader.pin();
        let version = pin.version();
        let decisions: Vec<Value> = messages
            .iter()
            .map(|message| wire::decision_to_json(&pin.decide(&message.as_request())))
            .collect();
        drop(pin);
        self.metrics[self.index]
            .decisions
            .fetch_add(decisions.len() as u64, Ordering::Relaxed);
        HttpResponse::json(
            object(vec![
                ("version", Value::number_u64(version)),
                ("decisions", Value::Array(decisions)),
            ])
            .render(),
        )
    }

    fn observe(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let rows = match body.field("observations").and_then(|rows| rows.as_array()) {
            Ok(rows) => rows,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        let mut observations = Vec::with_capacity(rows.len());
        for row in rows {
            match ObservationMessage::from_json_value(row) {
                Ok(observation) => observations.push(observation),
                Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
            }
        }
        match self.admin_call(|reply| AdminMsg::Observe(observations, reply)) {
            Some((accepted, skipped, pending)) => HttpResponse::json(
                object(vec![
                    ("accepted", Value::number_u64(accepted)),
                    ("skipped", Value::number_u64(skipped)),
                    ("pending", Value::number_u64(pending)),
                ])
                .render(),
            ),
            None => Self::admin_unavailable(),
        }
    }

    fn commit(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Commit) {
            Some((stats, version)) => {
                HttpResponse::json(wire::commit_to_json(&stats, version).render())
            }
            None => Self::admin_unavailable(),
        }
    }

    fn export_snapshot(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Export) {
            Some(snapshot) => HttpResponse::json(snapshot),
            None => Self::admin_unavailable(),
        }
    }

    fn import_snapshot(&self, request: &HttpRequest) -> HttpResponse {
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => {
                return HttpResponse::error(400, "Bad Request", "snapshot is not valid utf-8")
            }
        };
        // Parse + structural validation happen here on the worker, so the
        // admin thread only ever sees well-formed snapshots.
        let snapshot = match SifterSnapshot::parse(text) {
            Ok(snapshot) => snapshot,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        match self.admin_call(|reply| AdminMsg::Import(Box::new(snapshot), reply)) {
            Some(Ok((version, observations, dropped_pending))) => HttpResponse::json(
                object(vec![
                    ("restored", Value::Bool(true)),
                    ("version", Value::number_u64(version)),
                    ("observations", Value::number_u64(observations)),
                    ("dropped_pending", Value::number_u64(dropped_pending)),
                ])
                .render(),
            ),
            Some(Err(detail)) => HttpResponse::error(400, "Bad Request", &detail),
            None => Self::admin_unavailable(),
        }
    }

    fn stats(&self) -> HttpResponse {
        let Some(stats) = self.admin_call(AdminMsg::Stats) else {
            return Self::admin_unavailable();
        };
        let mut value = wire::service_stats_to_json(&stats);
        let workers: Vec<Value> = self
            .metrics
            .iter()
            .map(|metrics| {
                object(vec![
                    (
                        "requests",
                        Value::number_u64(metrics.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "decisions",
                        Value::number_u64(metrics.decisions.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Value::number_u64(metrics.errors.load(Ordering::Relaxed)),
                    ),
                ])
            })
            .collect();
        if let Value::Object(fields) = &mut value {
            fields.push(("workers".to_string(), Value::Array(workers)));
        }
        HttpResponse::json(value.render())
    }

    /// Round-trip a message to the admin thread; `None` means it is gone.
    fn admin_call<T>(&self, build: impl FnOnce(Sender<T>) -> AdminMsg) -> Option<T> {
        let (tx, rx) = mpsc::channel();
        self.admin.send(build(tx)).ok()?;
        rx.recv().ok()
    }

    fn admin_unavailable() -> HttpResponse {
        HttpResponse::error(500, "Internal Server Error", "admin thread unavailable")
    }
}
