//! The TrackerSift verdict server: enforcement decisions over the wire.
//!
//! Everything before this crate lives in-process — nothing could ask
//! "block, allow, surrogate, or observe?" without linking `trackersift`.
//! This crate puts a process boundary around the serving API: a
//! dependency-free HTTP/1.1 server over [`std::net::TcpListener`] built
//! directly on the concurrent split from `trackersift::concurrent`:
//!
//! * a **fixed worker pool** of readiness-polled event loops ([`poller`]):
//!   each worker multiplexes hundreds of nonblocking keep-alive
//!   connections over one `poll(2)` set and owns a cloned
//!   [`SifterReader`] — the decision path (`POST /v1/decisions`) touches
//!   no lock: poll, parse, pin the published table, copy a preformatted
//!   response, respond. No thread-per-connection anywhere: 512 idle
//!   clients cost 512 fds, not 512 stacks;
//! * a single **admin thread** owning the [`SifterWriter`]; observation
//!   ingest, commits, and snapshot import/export are serialised through a
//!   channel to it, and every commit publishes atomically to all workers;
//! * a hand-rolled HTTP layer ([`http`]), a JSON wire format and a
//!   length-prefixed **binary protocol** ([`wire`]) — the container has no
//!   registry access, and a verdict server needs very little HTTP.
//!
//! Responses on the decision endpoints are **preformatted at commit
//! time**: the published verdict table carries complete response bodies
//! for every non-surrogate decision (JSON and binary) plus per-script
//! surrogate frames, so the hot path serves a memcpy instead of walking a
//! JSON tree per request.
//!
//! # Endpoints
//!
//! | endpoint | role |
//! |---|---|
//! | `POST /v1/decisions` | one enforcement decision (lock-free; JSON or binary) |
//! | `POST /v1/decisions:batch` | many decisions from one pinned table (JSON or binary) |
//! | `GET /v1/keys` | key-interning handshake for binary id-form requests |
//! | `POST /v1/observations` | buffer observations into the writer |
//! | `POST /v1/commit` | fold observations in + publish atomically |
//! | `GET /v1/snapshot` | export the trained state (versioned JSON) |
//! | `GET /v1/snapshot?since=v` | delta snapshot for replicas: dirty cells since version `v` (JSON or binary) |
//! | `PUT /v1/snapshot` | validate + restore a snapshot, publish atomically |
//! | `GET /v1/revisions` | the published revision ring; `?diff=a..b` folds a drift diff |
//! | `POST /v1/tick` | advance the attached re-crawl scheduler one epoch |
//! | `GET /v1/stats` | [`ServiceStats`] + per-worker serving counters |
//! | `GET /healthz` | liveness probe |
//!
//! The decision endpoints speak JSON by default; a request with
//! `Content-Type:` [`wire::BINARY_CONTENT_TYPE`] opts into the binary
//! protocol for that exchange (see [`wire`] for the frame layout). Hot
//! clients complete the `GET /v1/keys` handshake once and then send four
//! `u32` key ids per record instead of four strings; a stale key epoch
//! (the table was restored from a snapshot since the handshake) gets
//! `409 Conflict`, never a silently wrong verdict.
//!
//! # Continuous operation
//!
//! A server started with [`VerdictServer::start_with_scheduler`] carries a
//! [`SchedulerDriver`] on its admin thread: `POST /v1/tick` advances the
//! simulated web one epoch, re-crawls it through the writer, and commits —
//! serialised with every other writer mutation, so a tick and a snapshot
//! restore can never interleave. Every commit records a
//! [`VerdictRevision`](trackersift::VerdictRevision) in the published
//! table's bounded ring; `GET /v1/revisions` lists the ring and
//! `GET /v1/revisions?diff=a..b` folds the drift between two versions into
//! one net change set (inverted ranges are a `400`, ranges outside the
//! ring a `404`). Because `GET` carries no request body, the binary
//! protocol is negotiated with `Accept:` [`wire::BINARY_CONTENT_TYPE`] on
//! these endpoints. Scheduler gauges (epoch, churn counts, fingerprint
//! retention) appear under `"scheduler"` in `GET /v1/stats`.
//!
//! # Replication
//!
//! `GET /v1/snapshot?since=v` serves the **delta-snapshot protocol**: the
//! net class transitions and touched surrogate plans between committed
//! version `v` and the pinned table's version, assembled worker-side from
//! the revision ring the table already carries (no writer round-trip).
//! When `v` has aged out of the bounded ring the server answers `410
//! Gone` whose body is a *full* snapshot envelope in the same shape —
//! the typed re-bootstrap signal a follower applies directly. A server
//! started with [`VerdictServer::start_replica`] serves decisions from a
//! table published by an external follower loop (see the
//! `trackersift-replica` crate): every mutating endpoint answers `409
//! Conflict`, and `GET /v1/stats` gains a `"replication"` section with
//! the upstream address and version lag.
//!
//! # Crash-only serving
//!
//! The server is built to be killed, not shut down:
//!
//! * **Durability** ([`DurabilityConfig`]): observations are written to a
//!   checksummed write-ahead journal *before* they mutate trainer state,
//!   commit markers are fsynced before the fold they cover, and boot
//!   replays snapshot + journal (tolerating a torn tail). `kill -9` loses
//!   at most the un-fsynced journal tail; a clean [`VerdictServer::shutdown`]
//!   merely syncs that tail — it deliberately restarts into the same
//!   state a crash would.
//! * **Self-healing workers**: a panic in a worker's event loop costs the
//!   connection that triggered it, never the worker — the loop is
//!   respawned (counted as `restarts` in `GET /v1/stats`) and its
//!   admission budget is released by connection destructors during the
//!   unwind.
//! * **Overload shedding**: bounded budgets on live connections and
//!   in-flight requests; work over budget is refused early with
//!   `503` + `Retry-After` (a binary shed frame on the binary protocol)
//!   instead of queueing into collapse.
//!
//! # Example
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use trackersift::Sifter;
//! use trackersift_server::{ServerConfig, VerdictServer};
//!
//! let (mut writer, _reader) = Sifter::builder().build_concurrent();
//! writer.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
//! writer.commit();
//!
//! let server = VerdictServer::start(writer, ServerConfig::ephemeral()).unwrap();
//! let mut stream = TcpStream::connect(server.local_addr()).unwrap();
//! let body = r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#;
//! write!(
//!     stream,
//!     "POST /v1/decisions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! stream.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains(r#""action":"block""#));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod http;
pub mod poller;
pub mod wire;

use crawler::json::{object, Value};
use http::{HttpRequest, HttpResponse, RequestParser};
use poller::Poller;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use trackersift::frames::{self, PROTO_VERSION};
use trackersift::{
    diff_revisions, CommitStats, DecisionRequest, DeltaSnapshot, JournalStats, KeyedRequest,
    ObserveOutcome, PrebuiltDecision, RecoveryReport, RevisionRangeError, ServiceStats,
    SifterReader, SifterSnapshot, SifterWriter, VerdictTable,
};
use wire::{BinaryKeys, BinaryRecord, DecisionMessage, ObservationMessage};

/// Configuration of a [`VerdictServer`].
///
/// ```
/// use trackersift_server::ServerConfig;
///
/// // An ephemeral localhost port, 2 workers, tight limits — the test shape.
/// let config = ServerConfig {
///     workers: 2,
///     max_body_bytes: 64 * 1024,
///     ..ServerConfig::ephemeral()
/// };
/// assert_eq!(config.addr, "127.0.0.1:0");
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Number of event-loop workers, each multiplexing its share of the
    /// connections over one poll set with its own lock-free
    /// [`SifterReader`] handle. Clamped to at least 1.
    pub workers: usize,
    /// Maximum accepted request body, in bytes (larger requests get `413`).
    pub max_body_bytes: usize,
    /// Idle timeout: a connection that makes no read/write progress for
    /// this long is closed, so a stalled client releases its slot.
    pub read_timeout: Duration,
    /// Admission budget on concurrent connections across the whole pool.
    /// A fresh accept over this budget is answered with a best-effort
    /// `503` + `Retry-After` and closed instead of being multiplexed.
    pub max_connections: usize,
    /// Admission budget on in-flight requests (parsed but not yet fully
    /// flushed) across the pool. A request admitted over this budget gets
    /// `503` + `Retry-After` (JSON or a binary shed frame, matching the
    /// request's protocol) but keeps its connection.
    pub max_inflight: usize,
    /// The `Retry-After` hint (seconds) attached to every shed response.
    pub retry_after: u32,
    /// Upper bound on the graceful drain at shutdown: requests already on
    /// the wire get this long to finish and flush before the workers give
    /// up and close.
    pub drain_timeout: Duration,
    /// Crash durability. `Some` attaches a write-ahead observation journal
    /// (see [`trackersift::journal`]) to the writer before serving starts:
    /// the boot replays the previous generation's snapshot + journal, and
    /// every observation is journaled before it mutates trainer state.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8377".to_string(),
            workers: 4,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            max_connections: 1024,
            max_inflight: 256,
            retry_after: 1,
            drain_timeout: Duration::from_secs(2),
            durability: None,
        }
    }
}

impl ServerConfig {
    /// A config bound to an ephemeral localhost port — what tests and
    /// examples use so parallel servers never collide.
    pub fn ephemeral() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }
}

/// Where and how the server journals observations for crash recovery.
///
/// The directory holds LevelDB-style generations — a `CURRENT` pointer
/// file, `snapshot-<g>.json`, `journal-<g>.wal` — managed by
/// [`trackersift::DurableDir`]. A `kill -9` at any byte boundary loses at
/// most the journal tail that was never fsynced.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The generation directory (created if missing).
    pub dir: PathBuf,
    /// fsync cadence: flush + sync the journal after this many appended
    /// records (commit markers always sync immediately). `1` = sync every
    /// record (maximum durability, minimum throughput).
    pub sync_every: u64,
    /// Rotate the journal into a fresh snapshot generation at the first
    /// commit after the journal file exceeds this many bytes (`0` = never
    /// auto-checkpoint). Rotation happens only at commit boundaries so an
    /// auto-checkpoint never publishes uncommitted observations.
    pub checkpoint_bytes: u64,
}

impl DurabilityConfig {
    /// Durability in `dir` with the default cadence: sync every 64
    /// records, checkpoint past 8 MiB of journal.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            sync_every: 64,
            checkpoint_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Per-worker serving counters, readable lock-free from any thread and
/// exposed by `GET /v1/stats`.
#[derive(Debug, Default)]
struct ServingCounters {
    /// Requests this worker parsed successfully.
    requests: AtomicU64,
    /// Decisions this worker served (batch requests count every element).
    decisions: AtomicU64,
    /// 4xx/5xx responses this worker produced.
    errors: AtomicU64,
    /// `accept(2)` failures this worker absorbed (each one feeds the
    /// exponential backoff).
    accept_failures: AtomicU64,
    /// Times this worker's event loop panicked and was respawned.
    restarts: AtomicU64,
    /// Connections refused at accept because the pool was over its
    /// connection budget.
    shed_connections: AtomicU64,
    /// Requests answered `503` because the pool was over its in-flight
    /// budget.
    shed_requests: AtomicU64,
    /// Delta snapshots served by `GET /v1/snapshot?since=` (200s).
    snapshot_deltas: AtomicU64,
    /// Full snapshot envelopes served as `410 Gone` bodies (the
    /// re-bootstrap signal).
    snapshot_fulls: AtomicU64,
}

/// Live gauges of a replica's follower loop, shared between the sync
/// thread (writer side) and the serving workers (the `"replication"`
/// section of `GET /v1/stats`). All counters are lock-free.
#[derive(Debug)]
pub struct ReplicaStatus {
    upstream: String,
    upstream_version: AtomicU64,
    applied_version: AtomicU64,
    polls: AtomicU64,
    deltas_applied: AtomicU64,
    bootstraps: AtomicU64,
    sync_errors: AtomicU64,
}

impl ReplicaStatus {
    /// Fresh gauges for a follower of `upstream` (`host:port`).
    pub fn new(upstream: impl Into<String>) -> Self {
        ReplicaStatus {
            upstream: upstream.into(),
            upstream_version: AtomicU64::new(0),
            applied_version: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            bootstraps: AtomicU64::new(0),
            sync_errors: AtomicU64::new(0),
        }
    }

    /// The primary this replica follows.
    pub fn upstream(&self) -> &str {
        &self.upstream
    }

    /// Record one completed sync poll: the version the upstream advertised
    /// and what was applied locally.
    pub fn record_sync(&self, upstream_version: u64, applied_version: u64, full: bool) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        self.upstream_version
            .store(upstream_version, Ordering::Relaxed);
        self.applied_version
            .store(applied_version, Ordering::Relaxed);
        if full {
            self.bootstraps.fetch_add(1, Ordering::Relaxed);
        } else {
            self.deltas_applied.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one failed sync poll (transport or apply error).
    pub fn record_error(&self) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        self.sync_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The committed primary version this replica last applied.
    pub fn applied_version(&self) -> u64 {
        self.applied_version.load(Ordering::Relaxed)
    }

    /// How many versions the replica trails the last-seen upstream
    /// version (0 when caught up).
    pub fn lag(&self) -> u64 {
        self.upstream_version
            .load(Ordering::Relaxed)
            .saturating_sub(self.applied_version.load(Ordering::Relaxed))
    }

    /// Full-snapshot (re)bootstraps performed, including the first.
    pub fn bootstraps(&self) -> u64 {
        self.bootstraps.load(Ordering::Relaxed)
    }

    /// Failed sync polls.
    pub fn sync_errors(&self) -> u64 {
        self.sync_errors.load(Ordering::Relaxed)
    }
}

/// Pool-wide live gauges behind the admission decisions. Updated by every
/// worker; released exactly in [`Conn`]'s `Drop` so a panicking worker's
/// unwinding connections never leak budget.
#[derive(Debug, Default)]
struct Gauges {
    /// Connections currently multiplexed across all workers.
    active_connections: AtomicU64,
    /// Requests parsed but not yet fully flushed, across all workers.
    inflight: AtomicU64,
}

/// What one scheduler tick did; the body of the `POST /v1/tick` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// The crawl epoch the tick completed (the seed crawl is epoch 0).
    pub epoch: u64,
    /// Observations the tick's re-crawl fed through the writer.
    pub observations: u64,
    /// Per-key class changes recorded by the tick's commit.
    pub drift_events: u64,
    /// The table version the tick published.
    pub version: u64,
}

/// Cumulative gauges of an attached scheduler, rendered under
/// `"scheduler"` in `GET /v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Last crawl epoch completed.
    pub epoch: u64,
    /// Ticks run so far.
    pub ticks: u64,
    /// Tracking scripts whose origin URL hopped to a fresh CDN subdomain.
    pub rotated_cdn_scripts: u64,
    /// Scripts whose tracking endpoints re-drew their paths.
    pub rotated_paths: u64,
    /// New invisible tracking pixels that appeared on pages.
    pub emerged_pixels: u64,
    /// Per-key class changes across every commit the scheduler drove.
    pub drift_events: u64,
    /// Rotated scripts probed for verdict retention.
    pub retention_probes: u64,
    /// Probes whose script-level verdict survived the rotation.
    pub retention_hits: u64,
}

/// A continuous re-crawl loop the server drives from its admin thread.
///
/// The server owns the *when* (a tick per `POST /v1/tick`, serialised with
/// every other writer mutation) and the driver owns the *what*: evolve the
/// simulated web one epoch, re-crawl it through the writer, commit. The
/// concrete implementation lives in the `scheduler` crate, which depends
/// on this one — the trait is defined here so the server never needs to.
pub trait SchedulerDriver: Send {
    /// Advance one epoch against the writer and commit the observations.
    fn tick(&mut self, writer: &mut SifterWriter) -> TickSummary;

    /// Cumulative gauges for the `"scheduler"` section of `GET /v1/stats`.
    fn stats(&self) -> SchedulerStats;
}

/// What `GET /v1/stats` learns from the admin thread in one round-trip.
struct AdminStats {
    service: ServiceStats,
    journal: Option<JournalStats>,
    generation: Option<u64>,
    /// Scheduler gauges plus the duration of the last tick in
    /// microseconds, when a scheduler is attached.
    scheduler: Option<(SchedulerStats, u64)>,
    /// Per-commit-loop `(published version, commits)` pairs — one entry
    /// per verdict shard the admin thread drives (one today; the sharded
    /// commit fan-out of `trackersift::shard` stays in-process for now).
    shards: Vec<(u64, u64)>,
}

/// Work routed to the admin thread (the single [`SifterWriter`] owner).
enum AdminMsg {
    Observe(Vec<ObservationMessage>, Sender<(u64, u64, u64)>),
    Commit(Sender<(CommitStats, u64)>),
    Export(Sender<String>),
    Import(Box<SifterSnapshot>, Sender<Result<(u64, u64, u64), String>>),
    /// Run one scheduler tick; `None` when no scheduler is attached.
    Tick(Sender<Option<TickSummary>>),
    Stats(Sender<AdminStats>),
}

/// A running verdict server; dropping (or [`VerdictServer::shutdown`])
/// stops the workers and joins every thread.
#[derive(Debug)]
pub struct VerdictServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl VerdictServer {
    /// Bind the listener, spawn the worker pool (one cloned
    /// [`SifterReader`] each) and the admin thread (sole owner of the
    /// [`SifterWriter`]), and start serving.
    ///
    /// With [`ServerConfig::durability`] set, the writer first recovers
    /// from the configured generation directory (snapshot + journal
    /// replay, torn tail tolerated) **before** the listener accepts
    /// anything, so the first served verdict already reflects every
    /// fsynced observation of the previous life; the report of what was
    /// recovered is kept on the handle ([`VerdictServer::recovery`]).
    pub fn start(writer: SifterWriter, config: ServerConfig) -> io::Result<VerdictServer> {
        VerdictServer::start_inner(writer, config, None)
    }

    /// [`VerdictServer::start`] with a re-crawl scheduler attached: the
    /// driver lives on the admin thread next to the writer, `POST
    /// /v1/tick` advances it one epoch per call, and `GET /v1/stats`
    /// gains a `"scheduler"` section.
    pub fn start_with_scheduler(
        writer: SifterWriter,
        config: ServerConfig,
        scheduler: Box<dyn SchedulerDriver>,
    ) -> io::Result<VerdictServer> {
        VerdictServer::start_inner(writer, config, Some(scheduler))
    }

    /// Start a **read-only replica server**: the worker pool serves
    /// decisions, keys, revisions, and delta snapshots from `reader`'s
    /// published tables (kept fresh by an external follower loop — see the
    /// `trackersift-replica` crate), every mutating endpoint answers
    /// `409 Conflict` pointing at the primary, and `GET /v1/stats` renders
    /// the `status` gauges under `"replication"`. No admin thread is
    /// spawned: a replica has no writer to own.
    pub fn start_replica(
        reader: SifterReader,
        status: Arc<ReplicaStatus>,
        config: ServerConfig,
    ) -> io::Result<VerdictServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let worker_count = config.workers.max(1);
        let counters: Arc<Vec<ServingCounters>> = Arc::new(
            (0..worker_count)
                .map(|_| ServingCounters::default())
                .collect(),
        );
        // The channel exists only to satisfy the worker shape; with the
        // receiver dropped here, any (impossible) admin call fails closed.
        let (admin_tx, _) = mpsc::channel();
        let mut server = VerdictServer {
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            workers: Vec::with_capacity(worker_count),
            admin: None,
            recovery: None,
        };
        let spawned = spawn_workers(
            &mut server,
            &listener,
            &reader,
            &admin_tx,
            &counters,
            &Arc::new(Gauges::default()),
            &Arc::new(None),
            &config,
            Some(status),
        );
        match spawned {
            Ok(()) => Ok(server),
            Err(error) => {
                server.stop_and_join();
                Err(error)
            }
        }
    }

    fn start_inner(
        mut writer: SifterWriter,
        config: ServerConfig,
        scheduler: Option<Box<dyn SchedulerDriver>>,
    ) -> io::Result<VerdictServer> {
        let recovery = match &config.durability {
            Some(durability) => Some(writer.open_durable(&durability.dir, durability.sync_every)?),
            None => None,
        };
        let checkpoint_bytes = config
            .durability
            .as_ref()
            .map_or(0, |durability| durability.checkpoint_bytes);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let worker_count = config.workers.max(1);
        let counters: Arc<Vec<ServingCounters>> = Arc::new(
            (0..worker_count)
                .map(|_| ServingCounters::default())
                .collect(),
        );
        let gauges = Arc::new(Gauges::default());
        let recovery_shared: Arc<Option<RecoveryReport>> = Arc::new(recovery.clone());
        let reader = writer.reader();
        let (admin_tx, admin_rx) = mpsc::channel();
        let admin = thread::Builder::new()
            .name("verdict-admin".to_string())
            .spawn(move || admin_loop(writer, admin_rx, checkpoint_bytes, scheduler))?;

        // Build the handle before spawning workers so a mid-startup
        // failure (fd exhaustion on try_clone, spawn refusal) tears down
        // whatever already started instead of leaking live threads on a
        // bound port.
        let mut server = VerdictServer {
            addr,
            stop,
            workers: Vec::with_capacity(worker_count),
            admin: Some(admin),
            recovery,
        };
        let spawned = spawn_workers(
            &mut server,
            &listener,
            &reader,
            &admin_tx,
            &counters,
            &gauges,
            &recovery_shared,
            &config,
            None,
        );
        // The workers hold the only remaining admin senders: when they
        // exit, the admin loop's receiver disconnects and the admin thread
        // exits. (Dropped before any join, or the admin would never see
        // the disconnect.)
        drop(admin_tx);
        match spawned {
            Ok(()) => Ok(server),
            Err(error) => {
                server.stop_and_join();
                Err(error)
            }
        }
    }

    /// The bound address (resolve the actual port of an ephemeral bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// What boot recovery replayed from the durability directory, when
    /// [`ServerConfig::durability`] was set (`None` otherwise).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Stop accepting, drain gracefully, and join every thread: requests
    /// already on the wire finish and flush (bounded by
    /// [`ServerConfig::drain_timeout`]), idle connections close, and the
    /// admin thread syncs the journal tail on its way out. Deliberately
    /// **no** checkpoint on shutdown: a clean stop restarts into exactly
    /// the state a crash at the same instant would (crash-only design).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Workers poll with a bounded timeout, so they observe the stop
        // flag within one poll interval — no wake-up connections needed.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(admin) = self.admin.take() {
            let _ = admin.join();
        }
    }
}

impl Drop for VerdictServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawn the worker pool onto `server.workers` — the shared tail of both
/// [`VerdictServer::start`] (primary, `replica: None`) and
/// [`VerdictServer::start_replica`]. Built before any join logic runs so a
/// mid-startup failure tears down whatever already started.
#[allow(clippy::too_many_arguments)]
fn spawn_workers(
    server: &mut VerdictServer,
    listener: &TcpListener,
    reader: &SifterReader,
    admin_tx: &Sender<AdminMsg>,
    counters: &Arc<Vec<ServingCounters>>,
    gauges: &Arc<Gauges>,
    recovery_shared: &Arc<Option<RecoveryReport>>,
    config: &ServerConfig,
    replica: Option<Arc<ReplicaStatus>>,
) -> io::Result<()> {
    for index in 0..config.workers.max(1) {
        let worker = Worker {
            listener: listener.try_clone()?,
            reader: reader.clone(),
            admin: admin_tx.clone(),
            stop: Arc::clone(&server.stop),
            counters: Arc::clone(counters),
            gauges: Arc::clone(gauges),
            recovery: Arc::clone(recovery_shared),
            replica: replica.clone(),
            index,
            max_body_bytes: config.max_body_bytes,
            read_timeout: config.read_timeout,
            max_connections: config.max_connections,
            max_inflight: config.max_inflight,
            retry_after: config.retry_after,
            drain_timeout: config.drain_timeout,
        };
        server.workers.push(
            thread::Builder::new()
                .name(format!("verdict-worker-{index}"))
                .spawn(move || worker.run())?,
        );
    }
    Ok(())
}

/// Rotate the journal into a fresh snapshot generation once it outgrows
/// `checkpoint_bytes`. Called only right after a commit, so the fold the
/// checkpoint performs is a no-op and never publishes uncommitted state;
/// a failed rotation is absorbed (the old generation keeps working and
/// the error shows up in the journal counters at the next attempt).
fn maybe_checkpoint(writer: &mut SifterWriter, checkpoint_bytes: u64) {
    if checkpoint_bytes == 0 {
        return;
    }
    let journal_bytes = writer.journal_stats().map_or(0, |stats| stats.bytes);
    if journal_bytes >= checkpoint_bytes {
        let _ = writer.checkpoint();
    }
}

/// The admin thread: applies every mutation through the single writer, so
/// commits and snapshot swaps are serialised and published atomically.
fn admin_loop(
    mut writer: SifterWriter,
    rx: mpsc::Receiver<AdminMsg>,
    checkpoint_bytes: u64,
    mut scheduler: Option<Box<dyn SchedulerDriver>>,
) {
    let mut last_tick_micros = 0u64;
    while let Ok(message) = rx.recv() {
        match message {
            AdminMsg::Observe(observations, reply) => {
                let mut accepted = 0u64;
                let mut skipped = 0u64;
                for observation in observations {
                    match observation {
                        ObservationMessage::Parts {
                            domain,
                            hostname,
                            script,
                            method,
                            tracking,
                        } => {
                            writer.observe_parts(&domain, &hostname, &script, &method, tracking);
                            accepted += 1;
                        }
                        ObservationMessage::Url {
                            url,
                            source_hostname,
                            resource_type,
                            script,
                            method,
                        } => {
                            match writer.observe_url(
                                &url,
                                &source_hostname,
                                resource_type,
                                &script,
                                &method,
                            ) {
                                ObserveOutcome::Observed(_) => accepted += 1,
                                ObserveOutcome::NoEngine | ObserveOutcome::InvalidUrl => {
                                    skipped += 1
                                }
                            }
                        }
                    }
                }
                let _ = reply.send((accepted, skipped, writer.sifter().pending()));
            }
            AdminMsg::Commit(reply) => {
                let stats = writer.commit();
                let _ = reply.send((stats, writer.published_version()));
                maybe_checkpoint(&mut writer, checkpoint_bytes);
            }
            AdminMsg::Export(reply) => {
                let _ = reply.send(writer.snapshot().to_json_string());
            }
            AdminMsg::Import(snapshot, reply) => {
                let result = writer
                    .restore_snapshot(&snapshot)
                    .map_err(|error| error.to_string())
                    .and_then(|dropped_pending| {
                        // A restored state is not durable until it is
                        // checkpointed into its own generation — the old
                        // journal belongs to the pre-restore state. Only
                        // report success once that checkpoint lands.
                        if writer.durable_generation().is_some() {
                            writer.checkpoint().map_err(|error| {
                                format!("snapshot restored but not checkpointed: {error}")
                            })?;
                        }
                        Ok((
                            writer.published_version(),
                            writer.sifter().observed(),
                            dropped_pending,
                        ))
                    });
                let _ = reply.send(result);
            }
            AdminMsg::Tick(reply) => {
                let summary = scheduler.as_mut().map(|driver| {
                    let started = Instant::now();
                    let summary = driver.tick(&mut writer);
                    last_tick_micros = started.elapsed().as_micros() as u64;
                    summary
                });
                let ticked = summary.is_some();
                let _ = reply.send(summary);
                if ticked {
                    maybe_checkpoint(&mut writer, checkpoint_bytes);
                }
            }
            AdminMsg::Stats(reply) => {
                let _ = reply.send(AdminStats {
                    service: writer.service_stats(),
                    journal: writer.journal_stats(),
                    generation: writer.durable_generation(),
                    scheduler: scheduler
                        .as_ref()
                        .map(|driver| (driver.stats(), last_tick_micros)),
                    shards: vec![(writer.published_version(), writer.sifter().commits())],
                });
            }
        }
    }
    // Clean shutdown = crash with a flushed tail: sync the journal, never
    // checkpoint, so pending-vs-committed state survives a restart
    // identically either way.
    let _ = writer.sync_journal();
}

/// One multiplexed connection of a worker's event loop.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Rendered-but-unsent response bytes.
    out: Vec<u8>,
    /// How much of `out` has been written so far.
    out_at: usize,
    /// Last moment the connection made read or write progress.
    last_activity: Instant,
    /// Close once `out` is fully flushed (error responses, explicit
    /// `Connection: close`).
    close_after_flush: bool,
    /// The peer closed or errored; drop once the outbound data is gone.
    dead: bool,
    /// Pool-wide admission gauges this connection holds budget in.
    gauges: Arc<Gauges>,
    /// In-flight admissions charged to this connection: requests whose
    /// responses are not yet fully on the wire.
    inflight_held: u64,
}

impl Conn {
    fn new(stream: TcpStream, gauges: Arc<Gauges>) -> Conn {
        gauges.active_connections.fetch_add(1, Ordering::Relaxed);
        Conn {
            stream,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_at: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            dead: false,
            gauges,
            inflight_held: 0,
        }
    }

    fn pending_out(&self) -> bool {
        self.out_at < self.out.len()
    }

    /// Charge one admitted request to the in-flight gauge; released when
    /// the output buffer fully drains (or in `Drop`).
    fn hold_inflight(&mut self) {
        self.gauges.inflight.fetch_add(1, Ordering::Relaxed);
        self.inflight_held += 1;
    }

    /// Flush as much of `out` as the socket accepts right now.
    fn flush(&mut self) {
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_at += n;
                    self.last_activity = Instant::now();
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_at = 0;
        if self.inflight_held > 0 {
            self.gauges
                .inflight
                .fetch_sub(self.inflight_held, Ordering::Relaxed);
            self.inflight_held = 0;
        }
    }

    /// Whether the event loop should retire this connection.
    fn finished(&self) -> bool {
        self.dead || (self.close_after_flush && !self.pending_out())
    }
}

impl Drop for Conn {
    /// Gauge release lives in `Drop`, not the event loop, so the budget
    /// stays exact on every exit path — including a worker panic
    /// unwinding its connection list.
    fn drop(&mut self) {
        self.gauges
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
        if self.inflight_held > 0 {
            self.gauges
                .inflight
                .fetch_sub(self.inflight_held, Ordering::Relaxed);
        }
    }
}

/// Exponential accept backoff with deterministic jitter: a persistent
/// accept failure (fd exhaustion being the classic) must not become a hot
/// spin across the pool, and the workers should not retry in lockstep.
struct AcceptBackoff {
    /// Consecutive failures (0 = healthy).
    failures: u32,
    /// Don't try to accept again before this instant.
    retry_at: Instant,
    /// xorshift state for the jitter; seeded per worker so the pool's
    /// retries decorrelate.
    jitter: u64,
}

impl AcceptBackoff {
    fn new(seed: u64) -> Self {
        AcceptBackoff {
            failures: 0,
            retry_at: Instant::now(),
            jitter: seed | 1,
        }
    }

    fn ready(&self, now: Instant) -> bool {
        now >= self.retry_at
    }

    fn succeeded(&mut self) {
        self.failures = 0;
    }

    /// Register one failure and schedule the next attempt: base 1 ms,
    /// doubled per consecutive failure, capped at 1 s, plus up to 50%
    /// jitter.
    fn failed(&mut self, now: Instant) {
        self.failures = self.failures.saturating_add(1);
        let base_ms = 1u64 << self.failures.min(10);
        // xorshift64: cheap, dependency-free, plenty for decorrelation.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let jitter_ms = if base_ms > 1 {
            self.jitter % (base_ms / 2 + 1)
        } else {
            0
        };
        self.retry_at = now + Duration::from_millis(base_ms.min(1000) + jitter_ms);
    }
}

/// One serving worker: a readiness-polled event loop multiplexing its
/// connections, touching only its own reader handle (and the admin channel
/// for write endpoints).
struct Worker {
    listener: TcpListener,
    reader: SifterReader,
    admin: Sender<AdminMsg>,
    stop: Arc<AtomicBool>,
    counters: Arc<Vec<ServingCounters>>,
    gauges: Arc<Gauges>,
    recovery: Arc<Option<RecoveryReport>>,
    /// `Some` on a read-only replica server: mutating endpoints answer
    /// `409` and the stats body renders these gauges.
    replica: Option<Arc<ReplicaStatus>>,
    index: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
    max_connections: usize,
    max_inflight: usize,
    retry_after: u32,
    drain_timeout: Duration,
}

/// Upper bound on one poll wait, so the stop flag is observed promptly.
const POLL_SLICE: Duration = Duration::from_millis(50);

impl Worker {
    /// Self-healing wrapper around the event loop: a panic anywhere in it
    /// (a poisoned request, an injected `worker.request` fault) unwinds
    /// this worker's connections — their admission budget releases in
    /// [`Conn`]'s `Drop` — gets counted, and the loop respawns with a
    /// fresh poll set. One bad request costs its connection, never a
    /// worker slot.
    fn run(self) {
        loop {
            match panic::catch_unwind(AssertUnwindSafe(|| self.event_loop())) {
                Ok(()) => return,
                Err(_) => {
                    self.counters[self.index]
                        .restarts
                        .fetch_add(1, Ordering::Relaxed);
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        }
    }

    fn event_loop(&self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut poller = Poller::new();
        let mut backoff = AcceptBackoff::new(0x9e37_79b9_7f4a_7c15 ^ (self.index as u64 + 1));
        let mut read_buf = vec![0u8; 64 * 1024];

        while !self.stop.load(Ordering::SeqCst) {
            // (Re)build the interest set: the shared listener while the
            // backoff allows accepting, plus every connection — read
            // interest unless it is only draining, write interest while
            // output is queued.
            poller.clear();
            let now = Instant::now();
            let accepting = backoff.ready(now);
            let listener_slot = accepting.then(|| poller.register(&self.listener, true, false));
            let conn_slots: Vec<usize> = conns
                .iter()
                .map(|conn| {
                    poller.register(&conn.stream, !conn.close_after_flush, conn.pending_out())
                })
                .collect();

            let timeout = if accepting {
                POLL_SLICE
            } else {
                POLL_SLICE.min(backoff.retry_at.saturating_duration_since(now))
            };
            if poller.wait(timeout.as_millis() as i32).is_err() {
                // A failed poll(2) leaves no readiness info; nap briefly
                // rather than spin, then rebuild the set from scratch.
                thread::sleep(Duration::from_millis(5));
                continue;
            }

            if listener_slot.is_some_and(|slot| poller.readable(slot)) {
                self.accept_pending(&mut conns, &mut backoff);
            }

            let now = Instant::now();
            for (slot, conn) in conn_slots.into_iter().zip(conns.iter_mut()) {
                if poller.writable(slot) && conn.pending_out() {
                    conn.flush();
                }
                if !conn.dead && !conn.close_after_flush && poller.readable(slot) {
                    self.service_readable(conn, &mut read_buf);
                }
                // A connection that made no progress for the idle timeout
                // is abandoned silently — exactly what a stalled or
                // half-vanished client gets, without tying up a slot.
                if now.saturating_duration_since(conn.last_activity) > self.read_timeout {
                    conn.dead = true;
                }
            }
            conns.retain(|conn| !conn.finished());
        }
        self.drain(&mut conns, &mut poller, &mut read_buf);
    }

    /// Graceful drain after the stop flag: connections with a response
    /// still queued or a request mid-parse get up to `drain_timeout` to
    /// finish and flush; idle keep-alive connections close immediately.
    /// Bounded so a wedged peer cannot hold shutdown hostage.
    fn drain(&self, conns: &mut Vec<Conn>, poller: &mut Poller, read_buf: &mut [u8]) {
        let deadline = Instant::now() + self.drain_timeout;
        conns.retain(|conn| !conn.dead && (conn.pending_out() || conn.parser.mid_request()));
        while !conns.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            poller.clear();
            let slots: Vec<usize> = conns
                .iter()
                .map(|conn| {
                    poller.register(&conn.stream, conn.parser.mid_request(), conn.pending_out())
                })
                .collect();
            let budget = deadline.saturating_duration_since(now).min(POLL_SLICE);
            if poller.wait(budget.as_millis() as i32).is_err() {
                thread::sleep(Duration::from_millis(5));
                continue;
            }
            for (slot, conn) in slots.into_iter().zip(conns.iter_mut()) {
                if poller.writable(slot) && conn.pending_out() {
                    conn.flush();
                }
                if !conn.dead && conn.parser.mid_request() && poller.readable(slot) {
                    self.service_readable(conn, read_buf);
                }
            }
            // Whatever finished its request and flushed is done; dropping
            // it closes the socket.
            conns.retain(|conn| !conn.dead && (conn.pending_out() || conn.parser.mid_request()));
        }
        conns.clear();
    }

    /// Drain the accept queue (the listener is level-triggered and shared
    /// between workers, so "readable" may be stale by the time we get
    /// here — `WouldBlock` is the normal exit).
    fn accept_pending(&self, conns: &mut Vec<Conn>, backoff: &mut AcceptBackoff) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    backoff.succeeded();
                    // Admission control: over the pool-wide connection
                    // budget, the socket gets a best-effort 503 +
                    // Retry-After and is closed without ever joining the
                    // poll set — shedding stays O(1) no matter how hard
                    // the overload is.
                    if self.gauges.active_connections.load(Ordering::Relaxed)
                        >= self.max_connections as u64
                    {
                        self.counters[self.index]
                            .shed_connections
                            .fetch_add(1, Ordering::Relaxed);
                        let mut out = Vec::new();
                        HttpResponse::shed(self.retry_after, "connection budget exhausted", true)
                            .render_into(&mut out, false);
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                        let _ = stream.write_all(&out);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream, Arc::clone(&self.gauges)));
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.counters[self.index]
                        .accept_failures
                        .fetch_add(1, Ordering::Relaxed);
                    backoff.failed(Instant::now());
                    return;
                }
            }
        }
    }

    /// Read once, then serve every complete request the bytes produced.
    fn service_readable(&self, conn: &mut Conn, read_buf: &mut [u8]) {
        match conn.stream.read(read_buf) {
            Ok(0) => {
                // EOF. A partial request on the wire is a client fault
                // worth answering (it may still read); a clean boundary is
                // just the end of the conversation.
                if conn.parser.mid_request() {
                    self.counters[self.index]
                        .errors
                        .fetch_add(1, Ordering::Relaxed);
                    HttpResponse::error(400, "Bad Request", "truncated request")
                        .render_into(&mut conn.out, false);
                    conn.parser.reset();
                    conn.close_after_flush = true;
                    conn.flush();
                } else {
                    conn.dead = true;
                }
                return;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.parser.push(&read_buf[..n]);
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }

        loop {
            match conn.parser.next(self.max_body_bytes) {
                Ok(Some(request)) => {
                    self.counters[self.index]
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    // Deterministic chaos hook: with the `failpoints`
                    // feature a `worker.request` panic fault detonates
                    // here, exercising the catch_unwind respawn path.
                    trackersift::failpoint::maybe_panic("worker.request");
                    let keep_alive = request.keep_alive();
                    // Admission control: over the in-flight budget the
                    // request is answered 503 + Retry-After in its own
                    // protocol (binary requests get a binary shed frame)
                    // without losing the connection.
                    let response = if self.gauges.inflight.load(Ordering::Relaxed)
                        >= self.max_inflight as u64
                    {
                        self.counters[self.index]
                            .shed_requests
                            .fetch_add(1, Ordering::Relaxed);
                        self.shed_response(&request)
                    } else {
                        conn.hold_inflight();
                        self.route(&request)
                    };
                    if response.status >= 400 {
                        self.counters[self.index]
                            .errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if !response.render_into(&mut conn.out, keep_alive) {
                        // Closing response: any pipelined remainder is
                        // from a desynced client, drop it.
                        conn.parser.reset();
                        conn.close_after_flush = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    self.counters[self.index]
                        .errors
                        .fetch_add(1, Ordering::Relaxed);
                    error.response().render_into(&mut conn.out, false);
                    conn.parser.reset();
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        // Optimistic flush: almost always the socket has write space, so
        // the response leaves in the same loop iteration it was computed.
        conn.flush();
    }

    fn route(&self, request: &HttpRequest) -> HttpResponse {
        // A replica owns no writer: every mutating endpoint is refused
        // with a typed conflict before any routing happens, so the
        // read-only guarantee cannot rot as routes are added.
        if self.replica.is_some() {
            let mutating = matches!(
                (request.method.as_str(), request.target.as_str()),
                ("POST", "/v1/observations" | "/v1/commit" | "/v1/tick")
                    | ("PUT", "/v1/snapshot")
                    | ("GET", "/v1/snapshot")
            );
            if mutating {
                return HttpResponse::error(
                    409,
                    "Conflict",
                    "read-only replica: apply mutations on the primary \
                     (delta snapshots stay available via /v1/snapshot?since=)",
                );
            }
        }
        let binary = request.header("content-type") == Some(wire::BINARY_CONTENT_TYPE);
        match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/healthz") => HttpResponse::text("ok"),
            ("POST", "/v1/decisions") if binary => self.decide_binary(request, false),
            ("POST", "/v1/decisions:batch") if binary => self.decide_binary(request, true),
            ("POST", "/v1/decisions") => self.decide_single(request),
            ("POST", "/v1/decisions:batch") => self.decide_batch(request),
            ("GET", "/v1/keys") => self.keys(),
            ("POST", "/v1/observations") => self.observe(request),
            ("POST", "/v1/commit") => self.commit(),
            ("GET", "/v1/snapshot") => self.export_snapshot(),
            ("PUT", "/v1/snapshot") => self.import_snapshot(request),
            // The snapshot and revisions targets carry their queries
            // verbatim, so these matches are prefix guards instead of
            // exact strings (the exact arms above win for bare targets).
            ("GET", target) if is_snapshot_target(target) => self.delta_snapshot(request),
            ("GET", target) if is_revisions_target(target) => self.revisions(request),
            ("POST", "/v1/tick") => self.tick(),
            ("GET", "/v1/stats") => match &self.replica {
                Some(status) => self.replica_stats(status),
                None => self.stats(),
            },
            (_, target) if is_revisions_target(target) || is_snapshot_target(target) => {
                HttpResponse::error(
                    405,
                    "Method Not Allowed",
                    &format!("{} does not support {}", request.target, request.method),
                )
            }
            (
                _,
                "/healthz"
                | "/v1/decisions"
                | "/v1/decisions:batch"
                | "/v1/keys"
                | "/v1/observations"
                | "/v1/commit"
                | "/v1/snapshot"
                | "/v1/tick"
                | "/v1/stats",
            ) => HttpResponse::error(
                405,
                "Method Not Allowed",
                &format!("{} does not support {}", request.target, request.method),
            ),
            _ => HttpResponse::error(404, "Not Found", &format!("no route {}", request.target)),
        }
    }

    /// The `503` for a request shed by the in-flight budget, in the
    /// protocol the request spoke: a binary shed frame for binary
    /// requests, the JSON `{"error", "retry_after"}` body otherwise. Both
    /// carry the `Retry-After` header and keep the connection alive.
    fn shed_response(&self, request: &HttpRequest) -> HttpResponse {
        if request.header("content-type") == Some(wire::BINARY_CONTENT_TYPE) {
            let mut response = HttpResponse::bytes(
                wire::BINARY_CONTENT_TYPE,
                wire::encode_binary_shed(self.retry_after),
            );
            response.status = 503;
            response.reason = "Service Unavailable";
            response.retry_after = Some(self.retry_after);
            response
        } else {
            HttpResponse::shed(self.retry_after, "in-flight budget exhausted", false)
        }
    }

    /// Parse a JSON request body (→ 400 on failure).
    fn parse_body(request: &HttpRequest) -> Result<Value, HttpResponse> {
        let text = std::str::from_utf8(&request.body).map_err(|_| {
            HttpResponse::error(400, "Bad Request", "request body is not valid utf-8")
        })?;
        Value::parse(text)
            .map_err(|error| HttpResponse::error(400, "Bad Request", &error.to_string()))
    }

    fn decide_single(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let message = match DecisionMessage::from_json_value(&body) {
            Ok(message) => message,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        // The lock-free hot path: one pin, one keyed walk, one memcpy of a
        // preformatted body; the reported version is the pinned table's.
        let pin = self.reader.pin();
        let table = pin.table();
        let body = json_single_body(table, &table.resolve(&message.as_request()));
        drop(pin);
        self.counters[self.index]
            .decisions
            .fetch_add(1, Ordering::Relaxed);
        HttpResponse::bytes("application/json", body)
    }

    fn decide_batch(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let rows = match body.field("requests").and_then(|rows| rows.as_array()) {
            Ok(rows) => rows,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        let mut messages = Vec::with_capacity(rows.len());
        for row in rows {
            match DecisionMessage::from_json_value(row) {
                Ok(message) => messages.push(message),
                Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
            }
        }
        // One pin covers the whole batch: every decision (surrogate
        // payloads included) reflects exactly one committed table version.
        let pin = self.reader.pin();
        let table = pin.table();
        let prebuilt = table.prebuilt();
        let mut out = prebuilt.json_batch_prefix().as_bytes().to_vec();
        for (at, message) in messages.iter().enumerate() {
            if at > 0 {
                out.push(b',');
            }
            match table.decide_prebuilt(&table.resolve(&message.as_request())) {
                PrebuiltDecision::Fixed(index) => {
                    out.extend_from_slice(prebuilt.json_fragment(index).as_bytes())
                }
                PrebuiltDecision::Surrogate(sf) => out.extend_from_slice(sf.json.as_bytes()),
                // Rewrite bodies depend on the request URL, so they are the
                // one decision encoded at serve time.
                PrebuiltDecision::Rewrite(rewritten) => {
                    out.extend_from_slice(frames::rewrite_value(&rewritten).render().as_bytes())
                }
            }
        }
        out.extend_from_slice(b"]}");
        drop(pin);
        self.counters[self.index]
            .decisions
            .fetch_add(messages.len() as u64, Ordering::Relaxed);
        HttpResponse::bytes("application/json", out)
    }

    /// The binary decision path for both endpoints; `batch` is the shape
    /// the endpoint requires (a mismatched kind byte is a 400).
    fn decide_binary(&self, request: &HttpRequest, batch: bool) -> HttpResponse {
        let decoded = match wire::decode_binary_request(&request.body) {
            Ok(decoded) => decoded,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.0),
        };
        if decoded.batch != batch {
            return HttpResponse::error(
                400,
                "Bad Request",
                "request kind does not match the endpoint",
            );
        }
        let pin = self.reader.pin();
        let table = pin.table();
        // Id-form records are only meaningful against the key table the
        // client fetched; a stale epoch must fail loudly, never resolve to
        // someone else's keys.
        if decoded.uses_ids() && decoded.epoch != table.keys_epoch() {
            let detail = format!(
                "key epoch {} is stale (current {}); re-fetch /v1/keys",
                decoded.epoch,
                table.keys_epoch()
            );
            return HttpResponse::error(409, "Conflict", &detail);
        }
        let response = if batch {
            let prebuilt = table.prebuilt();
            let mut out = Vec::with_capacity(13 + decoded.records.len() * 8);
            out.push(PROTO_VERSION);
            out.extend_from_slice(&table.version().to_le_bytes());
            out.extend_from_slice(&(decoded.records.len() as u32).to_le_bytes());
            for record in &decoded.records {
                match table.decide_prebuilt(&keyed_of(table, record)) {
                    PrebuiltDecision::Fixed(index) => {
                        let frame = prebuilt.binary_single(index);
                        out.extend_from_slice(&frames::encode_record_header(frame[1], frame[2], 0));
                    }
                    PrebuiltDecision::Surrogate(sf) => {
                        out.extend_from_slice(&frames::encode_record_header(
                            frames::ACTION_SURROGATE,
                            frames::SOURCE_NONE,
                            sf.binary.len() as u32,
                        ));
                        out.extend_from_slice(&sf.binary);
                    }
                    PrebuiltDecision::Rewrite(rewritten) => {
                        let payload = frames::encode_rewrite_payload(&rewritten);
                        out.extend_from_slice(&frames::encode_record_header(
                            frames::ACTION_REWRITE,
                            frames::SOURCE_NONE,
                            payload.len() as u32,
                        ));
                        out.extend_from_slice(&payload);
                    }
                }
            }
            HttpResponse::bytes(wire::BINARY_CONTENT_TYPE, out)
        } else {
            let record = &decoded.records[0];
            let body = binary_single_body(table, &keyed_of(table, record));
            HttpResponse::bytes(wire::BINARY_CONTENT_TYPE, body)
        };
        let served = decoded.records.len() as u64;
        drop(pin);
        self.counters[self.index]
            .decisions
            .fetch_add(served, Ordering::Relaxed);
        response
    }

    /// `GET /v1/keys`: the key-interning handshake. The reply's `keys[i]`
    /// is the string with id `i` in the pinned table; `epoch` scopes the
    /// ids' validity.
    fn keys(&self) -> HttpResponse {
        let pin = self.reader.pin();
        let table = pin.table();
        HttpResponse::json(wire::keys_to_json(
            table.keys_epoch(),
            table.version(),
            table.keys(),
        ))
    }

    fn observe(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let rows = match body.field("observations").and_then(|rows| rows.as_array()) {
            Ok(rows) => rows,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        let mut observations = Vec::with_capacity(rows.len());
        for row in rows {
            match ObservationMessage::from_json_value(row) {
                Ok(observation) => observations.push(observation),
                Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
            }
        }
        match self.admin_call(|reply| AdminMsg::Observe(observations, reply)) {
            Some((accepted, skipped, pending)) => HttpResponse::json(
                object(vec![
                    ("accepted", Value::number_u64(accepted)),
                    ("skipped", Value::number_u64(skipped)),
                    ("pending", Value::number_u64(pending)),
                ])
                .render(),
            ),
            None => Self::admin_unavailable(),
        }
    }

    fn commit(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Commit) {
            Some((stats, version)) => {
                HttpResponse::json(wire::commit_to_json(&stats, version).render())
            }
            None => Self::admin_unavailable(),
        }
    }

    /// `POST /v1/tick`: run one scheduler tick on the admin thread. A
    /// server with no scheduler attached answers `400`.
    fn tick(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Tick) {
            Some(Some(summary)) => HttpResponse::json(
                object(vec![
                    ("epoch", Value::number_u64(summary.epoch)),
                    ("observations", Value::number_u64(summary.observations)),
                    ("drift_events", Value::number_u64(summary.drift_events)),
                    ("version", Value::number_u64(summary.version)),
                ])
                .render(),
            ),
            Some(None) => HttpResponse::error(400, "Bad Request", "no scheduler attached"),
            None => Self::admin_unavailable(),
        }
    }

    /// `GET /v1/revisions`: the pinned table's revision ring, or — with
    /// `?diff=a..b` — the drift between two published versions folded into
    /// one net change set. JSON by default; since a `GET` carries no body
    /// to set a `Content-Type` on, `Accept:` [`wire::BINARY_CONTENT_TYPE`]
    /// selects the binary frames. An inverted range is a `400`, a range
    /// the bounded ring no longer covers a `404`.
    fn revisions(&self, request: &HttpRequest) -> HttpResponse {
        let binary = request.header("accept") == Some(wire::BINARY_CONTENT_TYPE);
        let range = match parse_revisions_query(&request.target) {
            Ok(range) => range,
            Err(detail) => return HttpResponse::error(400, "Bad Request", &detail),
        };
        let pin = self.reader.pin();
        let table = pin.table();
        let ring = table.revisions();
        match range {
            None if binary => HttpResponse::bytes(
                wire::BINARY_CONTENT_TYPE,
                frames::encode_revision_list(table.version(), ring),
            ),
            None => HttpResponse::json(frames::revision_list_value(table.version(), ring).render()),
            Some((from, to)) => match diff_revisions(ring, from, to) {
                Ok(diff) if binary => HttpResponse::bytes(
                    wire::BINARY_CONTENT_TYPE,
                    frames::encode_revision_diff(&diff),
                ),
                Ok(diff) => HttpResponse::json(frames::revision_diff_value(&diff).render()),
                Err(error @ RevisionRangeError::Inverted { .. }) => {
                    HttpResponse::error(400, "Bad Request", &error.to_string())
                }
                Err(error @ RevisionRangeError::Unknown { .. }) => {
                    HttpResponse::error(404, "Not Found", &error.to_string())
                }
            },
        }
    }

    /// `GET /v1/snapshot?since=v`: the dirty cells between published
    /// version `v` and the pinned table's current version, assembled from
    /// the revision ring, plus every surrogate plan the span touched. JSON
    /// by default, binary frames via `Accept:`
    /// [`wire::BINARY_CONTENT_TYPE`]. When `v` has aged out of the bounded
    /// ring the answer is `410 Gone` whose body is a *full* snapshot
    /// envelope — the typed re-bootstrap signal — so a lagging follower
    /// recovers in the same round trip that told it the diff is gone.
    fn delta_snapshot(&self, request: &HttpRequest) -> HttpResponse {
        let binary = request.header("accept") == Some(wire::BINARY_CONTENT_TYPE);
        let since = match parse_snapshot_query(&request.target) {
            Ok(since) => since,
            Err(detail) => return HttpResponse::error(400, "Bad Request", &detail),
        };
        let pin = self.reader.pin();
        let table = pin.table();
        let encode = |delta: &DeltaSnapshot| {
            if binary {
                HttpResponse::bytes(
                    wire::BINARY_CONTENT_TYPE,
                    frames::encode_delta_snapshot(delta),
                )
            } else {
                HttpResponse::json(frames::delta_snapshot_value(delta).render())
            }
        };
        match table.delta_since(since) {
            Ok(delta) => {
                self.counters[self.index]
                    .snapshot_deltas
                    .fetch_add(1, Ordering::Relaxed);
                encode(&delta)
            }
            Err(RevisionRangeError::Unknown { .. }) => {
                self.counters[self.index]
                    .snapshot_fulls
                    .fetch_add(1, Ordering::Relaxed);
                let mut response = encode(&table.full_snapshot_delta());
                response.status = 410;
                response.reason = "Gone";
                response
            }
            Err(error @ RevisionRangeError::Inverted { .. }) => {
                HttpResponse::error(400, "Bad Request", &error.to_string())
            }
        }
    }

    fn export_snapshot(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Export) {
            Some(snapshot) => HttpResponse::json(snapshot),
            None => Self::admin_unavailable(),
        }
    }

    fn import_snapshot(&self, request: &HttpRequest) -> HttpResponse {
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => {
                return HttpResponse::error(400, "Bad Request", "snapshot is not valid utf-8")
            }
        };
        // Parse + structural validation happen here on the worker, so the
        // admin thread only ever sees well-formed snapshots.
        let snapshot = match SifterSnapshot::parse(text) {
            Ok(snapshot) => snapshot,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        match self.admin_call(|reply| AdminMsg::Import(Box::new(snapshot), reply)) {
            Some(Ok((version, observations, dropped_pending))) => HttpResponse::json(
                object(vec![
                    ("restored", Value::Bool(true)),
                    ("version", Value::number_u64(version)),
                    ("observations", Value::number_u64(observations)),
                    ("dropped_pending", Value::number_u64(dropped_pending)),
                ])
                .render(),
            ),
            Some(Err(detail)) => HttpResponse::error(400, "Bad Request", &detail),
            None => Self::admin_unavailable(),
        }
    }

    fn stats(&self) -> HttpResponse {
        let Some(stats) = self.admin_call(AdminMsg::Stats) else {
            return Self::admin_unavailable();
        };
        let mut value = wire::service_stats_to_json(&stats.service);
        let mut worker_restarts = 0u64;
        let mut shed_connections = 0u64;
        let mut shed_requests = 0u64;
        let mut snapshot_deltas = 0u64;
        let mut snapshot_fulls = 0u64;
        let workers: Vec<Value> = self
            .counters
            .iter()
            .map(|counters| {
                let restarts = counters.restarts.load(Ordering::Relaxed);
                let conns_shed = counters.shed_connections.load(Ordering::Relaxed);
                let requests_shed = counters.shed_requests.load(Ordering::Relaxed);
                worker_restarts += restarts;
                shed_connections += conns_shed;
                shed_requests += requests_shed;
                snapshot_deltas += counters.snapshot_deltas.load(Ordering::Relaxed);
                snapshot_fulls += counters.snapshot_fulls.load(Ordering::Relaxed);
                object(vec![
                    (
                        "requests",
                        Value::number_u64(counters.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "decisions",
                        Value::number_u64(counters.decisions.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Value::number_u64(counters.errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "accept_failures",
                        Value::number_u64(counters.accept_failures.load(Ordering::Relaxed)),
                    ),
                    ("restarts", Value::number_u64(restarts)),
                    ("shed_connections", Value::number_u64(conns_shed)),
                    ("shed_requests", Value::number_u64(requests_shed)),
                ])
            })
            .collect();
        if let Value::Object(fields) = &mut value {
            fields.push(("workers".to_string(), Value::Array(workers)));
            fields.push((
                "admission".to_string(),
                object(vec![
                    (
                        "active_connections",
                        Value::number_u64(self.gauges.active_connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "inflight",
                        Value::number_u64(self.gauges.inflight.load(Ordering::Relaxed)),
                    ),
                    (
                        "max_connections",
                        Value::number_u64(self.max_connections as u64),
                    ),
                    ("max_inflight", Value::number_u64(self.max_inflight as u64)),
                    ("worker_restarts", Value::number_u64(worker_restarts)),
                    ("shed_connections", Value::number_u64(shed_connections)),
                    ("shed_requests", Value::number_u64(shed_requests)),
                ]),
            ));
            if let Some(generation) = stats.generation {
                let journal = stats.journal.unwrap_or_default();
                let mut durability = vec![
                    ("generation", Value::number_u64(generation)),
                    (
                        "journal",
                        object(vec![
                            ("appended", Value::number_u64(journal.appended)),
                            ("synced", Value::number_u64(journal.synced)),
                            ("syncs", Value::number_u64(journal.syncs)),
                            ("write_errors", Value::number_u64(journal.write_errors)),
                            ("sync_errors", Value::number_u64(journal.sync_errors)),
                            ("rotations", Value::number_u64(journal.rotations)),
                            ("bytes", Value::number_u64(journal.bytes)),
                        ]),
                    ),
                ];
                if let Some(recovery) = &*self.recovery {
                    durability.push((
                        "recovery",
                        object(vec![
                            ("generation", Value::number_u64(recovery.generation)),
                            ("restored_snapshot", Value::Bool(recovery.restored_snapshot)),
                            (
                                "snapshot_observations",
                                Value::number_u64(recovery.snapshot_observations),
                            ),
                            (
                                "replayed_records",
                                Value::number_u64(recovery.replayed_records),
                            ),
                            (
                                "replayed_commits",
                                Value::number_u64(recovery.replayed_commits),
                            ),
                            ("torn_bytes", Value::number_u64(recovery.torn_bytes)),
                        ]),
                    ));
                }
                fields.push(("durability".to_string(), object(durability)));
            }
            if let Some((scheduler, last_tick_micros)) = &stats.scheduler {
                fields.push((
                    "scheduler".to_string(),
                    object(vec![
                        ("epoch", Value::number_u64(scheduler.epoch)),
                        ("ticks", Value::number_u64(scheduler.ticks)),
                        ("last_tick_micros", Value::number_u64(*last_tick_micros)),
                        (
                            "rotated_cdn_scripts",
                            Value::number_u64(scheduler.rotated_cdn_scripts),
                        ),
                        ("rotated_paths", Value::number_u64(scheduler.rotated_paths)),
                        (
                            "emerged_pixels",
                            Value::number_u64(scheduler.emerged_pixels),
                        ),
                        ("drift_events", Value::number_u64(scheduler.drift_events)),
                        (
                            "retention",
                            object(vec![
                                ("probes", Value::number_u64(scheduler.retention_probes)),
                                ("hits", Value::number_u64(scheduler.retention_hits)),
                            ]),
                        ),
                    ]),
                ));
            }
            fields.push((
                "shards".to_string(),
                object(vec![
                    ("count", Value::number_u64(stats.shards.len() as u64)),
                    (
                        "writers",
                        Value::Array(
                            stats
                                .shards
                                .iter()
                                .map(|(version, commits)| {
                                    object(vec![
                                        ("version", Value::number_u64(*version)),
                                        ("commits", Value::number_u64(*commits)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
            let pin = self.reader.pin();
            let ring = pin.table().revisions();
            fields.push((
                "replication".to_string(),
                object(vec![
                    ("role", Value::String("primary".to_string())),
                    (
                        "ring",
                        object(vec![
                            ("len", Value::number_u64(ring.len() as u64)),
                            (
                                "oldest",
                                Value::number_u64(
                                    ring.first().map_or(0, |revision| revision.version()),
                                ),
                            ),
                            (
                                "newest",
                                Value::number_u64(
                                    ring.last().map_or(0, |revision| revision.version()),
                                ),
                            ),
                        ]),
                    ),
                    (
                        "snapshots",
                        object(vec![
                            ("deltas", Value::number_u64(snapshot_deltas)),
                            ("fulls", Value::number_u64(snapshot_fulls)),
                        ]),
                    ),
                ]),
            ));
        }
        HttpResponse::json(value.render())
    }

    /// The replica flavour of `GET /v1/stats`: no admin thread exists, so
    /// the body is assembled from the pinned table, the worker counters,
    /// and the follower's [`ReplicaStatus`] gauges. The `"replication"`
    /// section carries `role: "replica"` plus the sync-loop counters.
    fn replica_stats(&self, status: &ReplicaStatus) -> HttpResponse {
        let pin = self.reader.pin();
        let table = pin.table();
        let mut worker_restarts = 0u64;
        let mut shed_connections = 0u64;
        let mut shed_requests = 0u64;
        let workers: Vec<Value> = self
            .counters
            .iter()
            .map(|counters| {
                let restarts = counters.restarts.load(Ordering::Relaxed);
                let conns_shed = counters.shed_connections.load(Ordering::Relaxed);
                let requests_shed = counters.shed_requests.load(Ordering::Relaxed);
                worker_restarts += restarts;
                shed_connections += conns_shed;
                shed_requests += requests_shed;
                object(vec![
                    (
                        "requests",
                        Value::number_u64(counters.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "decisions",
                        Value::number_u64(counters.decisions.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Value::number_u64(counters.errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "accept_failures",
                        Value::number_u64(counters.accept_failures.load(Ordering::Relaxed)),
                    ),
                    ("restarts", Value::number_u64(restarts)),
                    ("shed_connections", Value::number_u64(conns_shed)),
                    ("shed_requests", Value::number_u64(requests_shed)),
                ])
            })
            .collect();
        let value = object(vec![
            ("version", Value::number_u64(table.version())),
            ("committed", Value::number_u64(table.committed())),
            ("residue", Value::number_u64(table.unattributed())),
            ("workers", Value::Array(workers)),
            (
                "admission",
                object(vec![
                    (
                        "active_connections",
                        Value::number_u64(self.gauges.active_connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "inflight",
                        Value::number_u64(self.gauges.inflight.load(Ordering::Relaxed)),
                    ),
                    (
                        "max_connections",
                        Value::number_u64(self.max_connections as u64),
                    ),
                    ("max_inflight", Value::number_u64(self.max_inflight as u64)),
                    ("worker_restarts", Value::number_u64(worker_restarts)),
                    ("shed_connections", Value::number_u64(shed_connections)),
                    ("shed_requests", Value::number_u64(shed_requests)),
                ]),
            ),
            (
                "replication",
                object(vec![
                    ("role", Value::String("replica".to_string())),
                    ("upstream", Value::String(status.upstream().to_string())),
                    (
                        "upstream_version",
                        Value::number_u64(status.upstream_version.load(Ordering::Relaxed)),
                    ),
                    (
                        "applied_version",
                        Value::number_u64(status.applied_version()),
                    ),
                    ("lag", Value::number_u64(status.lag())),
                    (
                        "polls",
                        Value::number_u64(status.polls.load(Ordering::Relaxed)),
                    ),
                    (
                        "deltas_applied",
                        Value::number_u64(status.deltas_applied.load(Ordering::Relaxed)),
                    ),
                    ("bootstraps", Value::number_u64(status.bootstraps())),
                    ("sync_errors", Value::number_u64(status.sync_errors())),
                ]),
            ),
        ]);
        HttpResponse::json(value.render())
    }

    /// Round-trip a message to the admin thread; `None` means it is gone.
    fn admin_call<T>(&self, build: impl FnOnce(Sender<T>) -> AdminMsg) -> Option<T> {
        let (tx, rx) = mpsc::channel();
        self.admin.send(build(tx)).ok()?;
        rx.recv().ok()
    }

    fn admin_unavailable() -> HttpResponse {
        HttpResponse::error(500, "Internal Server Error", "admin thread unavailable")
    }
}

/// Whether a request target addresses `/v1/revisions` (with or without a
/// query string).
fn is_revisions_target(target: &str) -> bool {
    target == "/v1/revisions" || target.starts_with("/v1/revisions?")
}

/// Whether a request target addresses `/v1/snapshot` *with* a query
/// string. The bare target keeps its exact-match routes (`GET` full JSON
/// export, `PUT` import); only the queried form reaches the delta handler.
fn is_snapshot_target(target: &str) -> bool {
    target.starts_with("/v1/snapshot?")
}

/// Parse the query of a `/v1/snapshot?since=v` target into the baseline
/// version. The bare target never reaches this (exact-match routes win),
/// so a missing or malformed `since` is a client error.
fn parse_snapshot_query(target: &str) -> Result<u64, String> {
    let query = target
        .strip_prefix("/v1/snapshot?")
        .ok_or_else(|| format!("bad target {target:?}"))?;
    let mut since = None;
    for pair in query.split('&') {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("malformed query parameter {pair:?}"));
        };
        if key != "since" {
            return Err(format!("unknown query parameter {key:?}"));
        }
        if since.is_some() {
            return Err("duplicate since parameter".to_string());
        }
        since = Some(
            value
                .parse()
                .map_err(|_| format!("bad snapshot version {value:?}"))?,
        );
    }
    since.ok_or_else(|| "empty query string".to_string())
}

/// Parse the query of a `/v1/revisions` target: no query lists the ring,
/// `?diff=a..b` selects a drift diff, anything else is a client error
/// (the `400` detail string).
fn parse_revisions_query(target: &str) -> Result<Option<(u64, u64)>, String> {
    let query = match target.strip_prefix("/v1/revisions") {
        Some("") => return Ok(None),
        Some(rest) => rest
            .strip_prefix('?')
            .ok_or_else(|| format!("bad target {target:?}"))?,
        None => return Err(format!("bad target {target:?}")),
    };
    let mut range = None;
    for pair in query.split('&') {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("malformed query parameter {pair:?}"));
        };
        if key != "diff" {
            return Err(format!("unknown query parameter {key:?}"));
        }
        if range.is_some() {
            return Err("duplicate diff parameter".to_string());
        }
        let Some((from, to)) = value.split_once("..") else {
            return Err(format!("diff range {value:?} is not of the form a..b"));
        };
        let from: u64 = from
            .parse()
            .map_err(|_| format!("bad revision version {from:?}"))?;
        let to: u64 = to
            .parse()
            .map_err(|_| format!("bad revision version {to:?}"))?;
        range = Some((from, to));
    }
    Ok(Some(range.ok_or_else(|| "empty query string".to_string())?))
}

/// Resolve one binary record into the keyed query the table serves.
fn keyed_of<'a>(table: &VerdictTable, record: &BinaryRecord<'a>) -> KeyedRequest<'a> {
    let keyed = match record.keys {
        BinaryKeys::Ids {
            domain,
            hostname,
            script,
            method,
        } => {
            let keys = table.keys();
            KeyedRequest::new(
                keys.key_for_id(domain),
                keys.key_for_id(hostname),
                keys.key_for_id(script),
                keys.key_for_id(method),
            )
        }
        BinaryKeys::Strings {
            domain,
            hostname,
            script,
            method,
        } => table.resolve(&DecisionRequest::new(domain, hostname, script, method)),
    };
    match record.context {
        Some(context) => {
            keyed.with_url(context.url, context.source_hostname, context.resource_type)
        }
        None => keyed,
    }
}

/// Assemble a complete JSON single-decision body from preformatted parts.
fn json_single_body(table: &VerdictTable, request: &KeyedRequest<'_>) -> Vec<u8> {
    let prebuilt = table.prebuilt();
    match table.decide_prebuilt(request) {
        PrebuiltDecision::Fixed(index) => prebuilt.json_single(index).as_bytes().to_vec(),
        PrebuiltDecision::Surrogate(sf) => {
            let prefix = prebuilt.json_single_prefix().as_bytes();
            let mut out = Vec::with_capacity(prefix.len() + sf.json.len() + 1);
            out.extend_from_slice(prefix);
            out.extend_from_slice(sf.json.as_bytes());
            out.push(b'}');
            out
        }
        PrebuiltDecision::Rewrite(rewritten) => {
            // The rewritten URL is request-dependent; splice the freshly
            // rendered decision object after the prebuilt version prefix.
            let fragment = frames::rewrite_value(&rewritten).render();
            let prefix = prebuilt.json_single_prefix().as_bytes();
            let mut out = Vec::with_capacity(prefix.len() + fragment.len() + 1);
            out.extend_from_slice(prefix);
            out.extend_from_slice(fragment.as_bytes());
            out.push(b'}');
            out
        }
    }
}

/// Assemble a complete binary single-decision body from preformatted parts.
fn binary_single_body(table: &VerdictTable, request: &KeyedRequest<'_>) -> Vec<u8> {
    match table.decide_prebuilt(request) {
        PrebuiltDecision::Fixed(index) => table.prebuilt().binary_single(index).to_vec(),
        PrebuiltDecision::Surrogate(sf) => {
            let header =
                frames::encode_surrogate_single_header(table.version(), sf.binary.len() as u32);
            let mut out = Vec::with_capacity(header.len() + sf.binary.len());
            out.extend_from_slice(&header);
            out.extend_from_slice(&sf.binary);
            out
        }
        PrebuiltDecision::Rewrite(rewritten) => {
            let payload = frames::encode_rewrite_payload(&rewritten);
            let header =
                frames::encode_rewrite_single_header(table.version(), payload.len() as u32);
            let mut out = Vec::with_capacity(header.len() + payload.len());
            out.extend_from_slice(&header);
            out.extend_from_slice(&payload);
            out
        }
    }
}
