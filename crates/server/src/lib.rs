//! The TrackerSift verdict server: enforcement decisions over the wire.
//!
//! Everything before this crate lives in-process — nothing could ask
//! "block, allow, surrogate, or observe?" without linking `trackersift`.
//! This crate puts a process boundary around the serving API: a
//! dependency-free HTTP/1.1 server over [`std::net::TcpListener`] built
//! directly on the concurrent split from `trackersift::concurrent`:
//!
//! * a **fixed worker pool** of readiness-polled event loops ([`poller`]):
//!   each worker multiplexes hundreds of nonblocking keep-alive
//!   connections over one `poll(2)` set and owns a cloned
//!   [`SifterReader`] — the decision path (`POST /v1/decisions`) touches
//!   no lock: poll, parse, pin the published table, copy a preformatted
//!   response, respond. No thread-per-connection anywhere: 512 idle
//!   clients cost 512 fds, not 512 stacks;
//! * a single **admin thread** owning the [`SifterWriter`]; observation
//!   ingest, commits, and snapshot import/export are serialised through a
//!   channel to it, and every commit publishes atomically to all workers;
//! * a hand-rolled HTTP layer ([`http`]), a JSON wire format and a
//!   length-prefixed **binary protocol** ([`wire`]) — the container has no
//!   registry access, and a verdict server needs very little HTTP.
//!
//! Responses on the decision endpoints are **preformatted at commit
//! time**: the published verdict table carries complete response bodies
//! for every non-surrogate decision (JSON and binary) plus per-script
//! surrogate frames, so the hot path serves a memcpy instead of walking a
//! JSON tree per request.
//!
//! # Endpoints
//!
//! | endpoint | role |
//! |---|---|
//! | `POST /v1/decisions` | one enforcement decision (lock-free; JSON or binary) |
//! | `POST /v1/decisions:batch` | many decisions from one pinned table (JSON or binary) |
//! | `GET /v1/keys` | key-interning handshake for binary id-form requests |
//! | `POST /v1/observations` | buffer observations into the writer |
//! | `POST /v1/commit` | fold observations in + publish atomically |
//! | `GET /v1/snapshot` | export the trained state (versioned JSON) |
//! | `PUT /v1/snapshot` | validate + restore a snapshot, publish atomically |
//! | `GET /v1/stats` | [`ServiceStats`] + per-worker serving counters |
//! | `GET /healthz` | liveness probe |
//!
//! The decision endpoints speak JSON by default; a request with
//! `Content-Type:` [`wire::BINARY_CONTENT_TYPE`] opts into the binary
//! protocol for that exchange (see [`wire`] for the frame layout). Hot
//! clients complete the `GET /v1/keys` handshake once and then send four
//! `u32` key ids per record instead of four strings; a stale key epoch
//! (the table was restored from a snapshot since the handshake) gets
//! `409 Conflict`, never a silently wrong verdict.
//!
//! # Example
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use trackersift::Sifter;
//! use trackersift_server::{ServerConfig, VerdictServer};
//!
//! let (mut writer, _reader) = Sifter::builder().build_concurrent();
//! writer.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
//! writer.commit();
//!
//! let server = VerdictServer::start(writer, ServerConfig::ephemeral()).unwrap();
//! let mut stream = TcpStream::connect(server.local_addr()).unwrap();
//! let body = r#"{"domain":"ads.com","hostname":"px.ads.com","script":"https://pub.com/a.js","method":"send"}"#;
//! write!(
//!     stream,
//!     "POST /v1/decisions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! stream.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains(r#""action":"block""#));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod http;
pub mod poller;
pub mod wire;

use crawler::json::{object, Value};
use http::{HttpRequest, HttpResponse, RequestParser};
use poller::Poller;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use trackersift::frames::{self, PROTO_VERSION};
use trackersift::{
    CommitStats, DecisionRequest, KeyedRequest, ObserveOutcome, PrebuiltDecision, ServiceStats,
    SifterReader, SifterSnapshot, SifterWriter, VerdictTable,
};
use wire::{BinaryKeys, BinaryRecord, DecisionMessage, ObservationMessage};

/// Configuration of a [`VerdictServer`].
///
/// ```
/// use trackersift_server::ServerConfig;
///
/// // An ephemeral localhost port, 2 workers, tight limits — the test shape.
/// let config = ServerConfig {
///     workers: 2,
///     max_body_bytes: 64 * 1024,
///     ..ServerConfig::ephemeral()
/// };
/// assert_eq!(config.addr, "127.0.0.1:0");
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Number of event-loop workers, each multiplexing its share of the
    /// connections over one poll set with its own lock-free
    /// [`SifterReader`] handle. Clamped to at least 1.
    pub workers: usize,
    /// Maximum accepted request body, in bytes (larger requests get `413`).
    pub max_body_bytes: usize,
    /// Idle timeout: a connection that makes no read/write progress for
    /// this long is closed, so a stalled client releases its slot.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8377".to_string(),
            workers: 4,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// A config bound to an ephemeral localhost port — what tests and
    /// examples use so parallel servers never collide.
    pub fn ephemeral() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }
}

/// Per-worker serving counters, readable lock-free from any thread and
/// exposed by `GET /v1/stats`.
#[derive(Debug, Default)]
struct ServingCounters {
    /// Requests this worker parsed successfully.
    requests: AtomicU64,
    /// Decisions this worker served (batch requests count every element).
    decisions: AtomicU64,
    /// 4xx/5xx responses this worker produced.
    errors: AtomicU64,
    /// `accept(2)` failures this worker absorbed (each one feeds the
    /// exponential backoff).
    accept_failures: AtomicU64,
}

/// Work routed to the admin thread (the single [`SifterWriter`] owner).
enum AdminMsg {
    Observe(Vec<ObservationMessage>, Sender<(u64, u64, u64)>),
    Commit(Sender<(CommitStats, u64)>),
    Export(Sender<String>),
    Import(Box<SifterSnapshot>, Sender<Result<(u64, u64, u64), String>>),
    Stats(Sender<ServiceStats>),
}

/// A running verdict server; dropping (or [`VerdictServer::shutdown`])
/// stops the workers and joins every thread.
#[derive(Debug)]
pub struct VerdictServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
}

impl VerdictServer {
    /// Bind the listener, spawn the worker pool (one cloned
    /// [`SifterReader`] each) and the admin thread (sole owner of the
    /// [`SifterWriter`]), and start serving.
    pub fn start(writer: SifterWriter, config: ServerConfig) -> io::Result<VerdictServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let worker_count = config.workers.max(1);
        let counters: Arc<Vec<ServingCounters>> = Arc::new(
            (0..worker_count)
                .map(|_| ServingCounters::default())
                .collect(),
        );
        let reader = writer.reader();
        let (admin_tx, admin_rx) = mpsc::channel();
        let admin = thread::Builder::new()
            .name("verdict-admin".to_string())
            .spawn(move || admin_loop(writer, admin_rx))?;

        // Build the handle before spawning workers so a mid-startup
        // failure (fd exhaustion on try_clone, spawn refusal) tears down
        // whatever already started instead of leaking live threads on a
        // bound port.
        let mut server = VerdictServer {
            addr,
            stop,
            workers: Vec::with_capacity(worker_count),
            admin: Some(admin),
        };
        let spawned = (|| -> io::Result<()> {
            for index in 0..worker_count {
                let worker = Worker {
                    listener: listener.try_clone()?,
                    reader: reader.clone(),
                    admin: admin_tx.clone(),
                    stop: Arc::clone(&server.stop),
                    counters: Arc::clone(&counters),
                    index,
                    max_body_bytes: config.max_body_bytes,
                    read_timeout: config.read_timeout,
                };
                server.workers.push(
                    thread::Builder::new()
                        .name(format!("verdict-worker-{index}"))
                        .spawn(move || worker.run())?,
                );
            }
            Ok(())
        })();
        // The workers hold the only remaining admin senders: when they
        // exit, the admin loop's receiver disconnects and the admin thread
        // exits. (Dropped before any join, or the admin would never see
        // the disconnect.)
        drop(admin_tx);
        match spawned {
            Ok(()) => Ok(server),
            Err(error) => {
                server.stop_and_join();
                Err(error)
            }
        }
    }

    /// The bound address (resolve the actual port of an ephemeral bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the workers, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Workers poll with a bounded timeout, so they observe the stop
        // flag within one poll interval — no wake-up connections needed.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(admin) = self.admin.take() {
            let _ = admin.join();
        }
    }
}

impl Drop for VerdictServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The admin thread: applies every mutation through the single writer, so
/// commits and snapshot swaps are serialised and published atomically.
fn admin_loop(mut writer: SifterWriter, rx: mpsc::Receiver<AdminMsg>) {
    while let Ok(message) = rx.recv() {
        match message {
            AdminMsg::Observe(observations, reply) => {
                let mut accepted = 0u64;
                let mut skipped = 0u64;
                for observation in observations {
                    match observation {
                        ObservationMessage::Parts {
                            domain,
                            hostname,
                            script,
                            method,
                            tracking,
                        } => {
                            writer.observe_parts(&domain, &hostname, &script, &method, tracking);
                            accepted += 1;
                        }
                        ObservationMessage::Url {
                            url,
                            source_hostname,
                            resource_type,
                            script,
                            method,
                        } => {
                            match writer.observe_url(
                                &url,
                                &source_hostname,
                                resource_type,
                                &script,
                                &method,
                            ) {
                                ObserveOutcome::Observed(_) => accepted += 1,
                                ObserveOutcome::NoEngine | ObserveOutcome::InvalidUrl => {
                                    skipped += 1
                                }
                            }
                        }
                    }
                }
                let _ = reply.send((accepted, skipped, writer.sifter().pending()));
            }
            AdminMsg::Commit(reply) => {
                let stats = writer.commit();
                let _ = reply.send((stats, writer.published_version()));
            }
            AdminMsg::Export(reply) => {
                let _ = reply.send(writer.snapshot().to_json_string());
            }
            AdminMsg::Import(snapshot, reply) => {
                let result = writer
                    .restore_snapshot(&snapshot)
                    .map(|dropped_pending| {
                        (
                            writer.published_version(),
                            writer.sifter().observed(),
                            dropped_pending,
                        )
                    })
                    .map_err(|error| error.to_string());
                let _ = reply.send(result);
            }
            AdminMsg::Stats(reply) => {
                let _ = reply.send(writer.service_stats());
            }
        }
    }
}

/// One multiplexed connection of a worker's event loop.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Rendered-but-unsent response bytes.
    out: Vec<u8>,
    /// How much of `out` has been written so far.
    out_at: usize,
    /// Last moment the connection made read or write progress.
    last_activity: Instant,
    /// Close once `out` is fully flushed (error responses, explicit
    /// `Connection: close`).
    close_after_flush: bool,
    /// The peer closed or errored; drop once the outbound data is gone.
    dead: bool,
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_at < self.out.len()
    }

    /// Flush as much of `out` as the socket accepts right now.
    fn flush(&mut self) {
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_at += n;
                    self.last_activity = Instant::now();
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_at = 0;
    }

    /// Whether the event loop should retire this connection.
    fn finished(&self) -> bool {
        self.dead || (self.close_after_flush && !self.pending_out())
    }
}

/// Exponential accept backoff with deterministic jitter: a persistent
/// accept failure (fd exhaustion being the classic) must not become a hot
/// spin across the pool, and the workers should not retry in lockstep.
struct AcceptBackoff {
    /// Consecutive failures (0 = healthy).
    failures: u32,
    /// Don't try to accept again before this instant.
    retry_at: Instant,
    /// xorshift state for the jitter; seeded per worker so the pool's
    /// retries decorrelate.
    jitter: u64,
}

impl AcceptBackoff {
    fn new(seed: u64) -> Self {
        AcceptBackoff {
            failures: 0,
            retry_at: Instant::now(),
            jitter: seed | 1,
        }
    }

    fn ready(&self, now: Instant) -> bool {
        now >= self.retry_at
    }

    fn succeeded(&mut self) {
        self.failures = 0;
    }

    /// Register one failure and schedule the next attempt: base 1 ms,
    /// doubled per consecutive failure, capped at 1 s, plus up to 50%
    /// jitter.
    fn failed(&mut self, now: Instant) {
        self.failures = self.failures.saturating_add(1);
        let base_ms = 1u64 << self.failures.min(10);
        // xorshift64: cheap, dependency-free, plenty for decorrelation.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let jitter_ms = if base_ms > 1 {
            self.jitter % (base_ms / 2 + 1)
        } else {
            0
        };
        self.retry_at = now + Duration::from_millis(base_ms.min(1000) + jitter_ms);
    }
}

/// One serving worker: a readiness-polled event loop multiplexing its
/// connections, touching only its own reader handle (and the admin channel
/// for write endpoints).
struct Worker {
    listener: TcpListener,
    reader: SifterReader,
    admin: Sender<AdminMsg>,
    stop: Arc<AtomicBool>,
    counters: Arc<Vec<ServingCounters>>,
    index: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
}

/// Upper bound on one poll wait, so the stop flag is observed promptly.
const POLL_SLICE: Duration = Duration::from_millis(50);

impl Worker {
    fn run(self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut poller = Poller::new();
        let mut backoff = AcceptBackoff::new(0x9e37_79b9_7f4a_7c15 ^ (self.index as u64 + 1));
        let mut read_buf = vec![0u8; 64 * 1024];

        while !self.stop.load(Ordering::SeqCst) {
            // (Re)build the interest set: the shared listener while the
            // backoff allows accepting, plus every connection — read
            // interest unless it is only draining, write interest while
            // output is queued.
            poller.clear();
            let now = Instant::now();
            let accepting = backoff.ready(now);
            let listener_slot = accepting.then(|| poller.register(&self.listener, true, false));
            let conn_slots: Vec<usize> = conns
                .iter()
                .map(|conn| {
                    poller.register(&conn.stream, !conn.close_after_flush, conn.pending_out())
                })
                .collect();

            let timeout = if accepting {
                POLL_SLICE
            } else {
                POLL_SLICE.min(backoff.retry_at.saturating_duration_since(now))
            };
            if poller.wait(timeout.as_millis() as i32).is_err() {
                // A failed poll(2) leaves no readiness info; nap briefly
                // rather than spin, then rebuild the set from scratch.
                thread::sleep(Duration::from_millis(5));
                continue;
            }

            if listener_slot.is_some_and(|slot| poller.readable(slot)) {
                self.accept_pending(&mut conns, &mut backoff);
            }

            let now = Instant::now();
            for (slot, conn) in conn_slots.into_iter().zip(conns.iter_mut()) {
                if poller.writable(slot) && conn.pending_out() {
                    conn.flush();
                }
                if !conn.dead && !conn.close_after_flush && poller.readable(slot) {
                    self.service_readable(conn, &mut read_buf);
                }
                // A connection that made no progress for the idle timeout
                // is abandoned silently — exactly what a stalled or
                // half-vanished client gets, without tying up a slot.
                if now.saturating_duration_since(conn.last_activity) > self.read_timeout {
                    conn.dead = true;
                }
            }
            conns.retain(|conn| !conn.finished());
        }
    }

    /// Drain the accept queue (the listener is level-triggered and shared
    /// between workers, so "readable" may be stale by the time we get
    /// here — `WouldBlock` is the normal exit).
    fn accept_pending(&self, conns: &mut Vec<Conn>, backoff: &mut AcceptBackoff) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    backoff.succeeded();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn {
                        stream,
                        parser: RequestParser::new(),
                        out: Vec::new(),
                        out_at: 0,
                        last_activity: Instant::now(),
                        close_after_flush: false,
                        dead: false,
                    });
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.counters[self.index]
                        .accept_failures
                        .fetch_add(1, Ordering::Relaxed);
                    backoff.failed(Instant::now());
                    return;
                }
            }
        }
    }

    /// Read once, then serve every complete request the bytes produced.
    fn service_readable(&self, conn: &mut Conn, read_buf: &mut [u8]) {
        match conn.stream.read(read_buf) {
            Ok(0) => {
                // EOF. A partial request on the wire is a client fault
                // worth answering (it may still read); a clean boundary is
                // just the end of the conversation.
                if conn.parser.mid_request() {
                    self.counters[self.index]
                        .errors
                        .fetch_add(1, Ordering::Relaxed);
                    HttpResponse::error(400, "Bad Request", "truncated request")
                        .render_into(&mut conn.out, false);
                    conn.parser.reset();
                    conn.close_after_flush = true;
                    conn.flush();
                } else {
                    conn.dead = true;
                }
                return;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.parser.push(&read_buf[..n]);
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }

        loop {
            match conn.parser.next(self.max_body_bytes) {
                Ok(Some(request)) => {
                    self.counters[self.index]
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    let keep_alive = request.keep_alive();
                    let response = self.route(&request);
                    if response.status >= 400 {
                        self.counters[self.index]
                            .errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if !response.render_into(&mut conn.out, keep_alive) {
                        // Closing response: any pipelined remainder is
                        // from a desynced client, drop it.
                        conn.parser.reset();
                        conn.close_after_flush = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    self.counters[self.index]
                        .errors
                        .fetch_add(1, Ordering::Relaxed);
                    error.response().render_into(&mut conn.out, false);
                    conn.parser.reset();
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        // Optimistic flush: almost always the socket has write space, so
        // the response leaves in the same loop iteration it was computed.
        conn.flush();
    }

    fn route(&self, request: &HttpRequest) -> HttpResponse {
        let binary = request.header("content-type") == Some(wire::BINARY_CONTENT_TYPE);
        match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/healthz") => HttpResponse::text("ok"),
            ("POST", "/v1/decisions") if binary => self.decide_binary(request, false),
            ("POST", "/v1/decisions:batch") if binary => self.decide_binary(request, true),
            ("POST", "/v1/decisions") => self.decide_single(request),
            ("POST", "/v1/decisions:batch") => self.decide_batch(request),
            ("GET", "/v1/keys") => self.keys(),
            ("POST", "/v1/observations") => self.observe(request),
            ("POST", "/v1/commit") => self.commit(),
            ("GET", "/v1/snapshot") => self.export_snapshot(),
            ("PUT", "/v1/snapshot") => self.import_snapshot(request),
            ("GET", "/v1/stats") => self.stats(),
            (
                _,
                "/healthz"
                | "/v1/decisions"
                | "/v1/decisions:batch"
                | "/v1/keys"
                | "/v1/observations"
                | "/v1/commit"
                | "/v1/snapshot"
                | "/v1/stats",
            ) => HttpResponse::error(
                405,
                "Method Not Allowed",
                &format!("{} does not support {}", request.target, request.method),
            ),
            _ => HttpResponse::error(404, "Not Found", &format!("no route {}", request.target)),
        }
    }

    /// Parse a JSON request body (→ 400 on failure).
    fn parse_body(request: &HttpRequest) -> Result<Value, HttpResponse> {
        let text = std::str::from_utf8(&request.body).map_err(|_| {
            HttpResponse::error(400, "Bad Request", "request body is not valid utf-8")
        })?;
        Value::parse(text)
            .map_err(|error| HttpResponse::error(400, "Bad Request", &error.to_string()))
    }

    fn decide_single(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let message = match DecisionMessage::from_json_value(&body) {
            Ok(message) => message,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        // The lock-free hot path: one pin, one keyed walk, one memcpy of a
        // preformatted body; the reported version is the pinned table's.
        let pin = self.reader.pin();
        let table = pin.table();
        let body = json_single_body(table, &table.resolve(&message.as_request()));
        drop(pin);
        self.counters[self.index]
            .decisions
            .fetch_add(1, Ordering::Relaxed);
        HttpResponse::bytes("application/json", body)
    }

    fn decide_batch(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let rows = match body.field("requests").and_then(|rows| rows.as_array()) {
            Ok(rows) => rows,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        let mut messages = Vec::with_capacity(rows.len());
        for row in rows {
            match DecisionMessage::from_json_value(row) {
                Ok(message) => messages.push(message),
                Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
            }
        }
        // One pin covers the whole batch: every decision (surrogate
        // payloads included) reflects exactly one committed table version.
        let pin = self.reader.pin();
        let table = pin.table();
        let prebuilt = table.prebuilt();
        let mut out = prebuilt.json_batch_prefix().as_bytes().to_vec();
        for (at, message) in messages.iter().enumerate() {
            if at > 0 {
                out.push(b',');
            }
            match table.decide_prebuilt(&table.resolve(&message.as_request())) {
                PrebuiltDecision::Fixed(index) => {
                    out.extend_from_slice(prebuilt.json_fragment(index).as_bytes())
                }
                PrebuiltDecision::Surrogate(sf) => out.extend_from_slice(sf.json.as_bytes()),
            }
        }
        out.extend_from_slice(b"]}");
        drop(pin);
        self.counters[self.index]
            .decisions
            .fetch_add(messages.len() as u64, Ordering::Relaxed);
        HttpResponse::bytes("application/json", out)
    }

    /// The binary decision path for both endpoints; `batch` is the shape
    /// the endpoint requires (a mismatched kind byte is a 400).
    fn decide_binary(&self, request: &HttpRequest, batch: bool) -> HttpResponse {
        let decoded = match wire::decode_binary_request(&request.body) {
            Ok(decoded) => decoded,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.0),
        };
        if decoded.batch != batch {
            return HttpResponse::error(
                400,
                "Bad Request",
                "request kind does not match the endpoint",
            );
        }
        let pin = self.reader.pin();
        let table = pin.table();
        // Id-form records are only meaningful against the key table the
        // client fetched; a stale epoch must fail loudly, never resolve to
        // someone else's keys.
        if decoded.uses_ids() && decoded.epoch != table.keys_epoch() {
            let detail = format!(
                "key epoch {} is stale (current {}); re-fetch /v1/keys",
                decoded.epoch,
                table.keys_epoch()
            );
            return HttpResponse::error(409, "Conflict", &detail);
        }
        let response = if batch {
            let prebuilt = table.prebuilt();
            let mut out = Vec::with_capacity(13 + decoded.records.len() * 8);
            out.push(PROTO_VERSION);
            out.extend_from_slice(&table.version().to_le_bytes());
            out.extend_from_slice(&(decoded.records.len() as u32).to_le_bytes());
            for record in &decoded.records {
                match table.decide_prebuilt(&keyed_of(table, record)) {
                    PrebuiltDecision::Fixed(index) => {
                        let frame = prebuilt.binary_single(index);
                        out.extend_from_slice(&frames::encode_record_header(frame[1], frame[2], 0));
                    }
                    PrebuiltDecision::Surrogate(sf) => {
                        out.extend_from_slice(&frames::encode_record_header(
                            frames::ACTION_SURROGATE,
                            frames::SOURCE_NONE,
                            sf.binary.len() as u32,
                        ));
                        out.extend_from_slice(&sf.binary);
                    }
                }
            }
            HttpResponse::bytes(wire::BINARY_CONTENT_TYPE, out)
        } else {
            let record = &decoded.records[0];
            let body = binary_single_body(table, &keyed_of(table, record));
            HttpResponse::bytes(wire::BINARY_CONTENT_TYPE, body)
        };
        let served = decoded.records.len() as u64;
        drop(pin);
        self.counters[self.index]
            .decisions
            .fetch_add(served, Ordering::Relaxed);
        response
    }

    /// `GET /v1/keys`: the key-interning handshake. The reply's `keys[i]`
    /// is the string with id `i` in the pinned table; `epoch` scopes the
    /// ids' validity.
    fn keys(&self) -> HttpResponse {
        let pin = self.reader.pin();
        let table = pin.table();
        HttpResponse::json(wire::keys_to_json(
            table.keys_epoch(),
            table.version(),
            table.keys(),
        ))
    }

    fn observe(&self, request: &HttpRequest) -> HttpResponse {
        let body = match Self::parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let rows = match body.field("observations").and_then(|rows| rows.as_array()) {
            Ok(rows) => rows,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        let mut observations = Vec::with_capacity(rows.len());
        for row in rows {
            match ObservationMessage::from_json_value(row) {
                Ok(observation) => observations.push(observation),
                Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
            }
        }
        match self.admin_call(|reply| AdminMsg::Observe(observations, reply)) {
            Some((accepted, skipped, pending)) => HttpResponse::json(
                object(vec![
                    ("accepted", Value::number_u64(accepted)),
                    ("skipped", Value::number_u64(skipped)),
                    ("pending", Value::number_u64(pending)),
                ])
                .render(),
            ),
            None => Self::admin_unavailable(),
        }
    }

    fn commit(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Commit) {
            Some((stats, version)) => {
                HttpResponse::json(wire::commit_to_json(&stats, version).render())
            }
            None => Self::admin_unavailable(),
        }
    }

    fn export_snapshot(&self) -> HttpResponse {
        match self.admin_call(AdminMsg::Export) {
            Some(snapshot) => HttpResponse::json(snapshot),
            None => Self::admin_unavailable(),
        }
    }

    fn import_snapshot(&self, request: &HttpRequest) -> HttpResponse {
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => {
                return HttpResponse::error(400, "Bad Request", "snapshot is not valid utf-8")
            }
        };
        // Parse + structural validation happen here on the worker, so the
        // admin thread only ever sees well-formed snapshots.
        let snapshot = match SifterSnapshot::parse(text) {
            Ok(snapshot) => snapshot,
            Err(error) => return HttpResponse::error(400, "Bad Request", &error.to_string()),
        };
        match self.admin_call(|reply| AdminMsg::Import(Box::new(snapshot), reply)) {
            Some(Ok((version, observations, dropped_pending))) => HttpResponse::json(
                object(vec![
                    ("restored", Value::Bool(true)),
                    ("version", Value::number_u64(version)),
                    ("observations", Value::number_u64(observations)),
                    ("dropped_pending", Value::number_u64(dropped_pending)),
                ])
                .render(),
            ),
            Some(Err(detail)) => HttpResponse::error(400, "Bad Request", &detail),
            None => Self::admin_unavailable(),
        }
    }

    fn stats(&self) -> HttpResponse {
        let Some(stats) = self.admin_call(AdminMsg::Stats) else {
            return Self::admin_unavailable();
        };
        let mut value = wire::service_stats_to_json(&stats);
        let workers: Vec<Value> = self
            .counters
            .iter()
            .map(|counters| {
                object(vec![
                    (
                        "requests",
                        Value::number_u64(counters.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "decisions",
                        Value::number_u64(counters.decisions.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors",
                        Value::number_u64(counters.errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "accept_failures",
                        Value::number_u64(counters.accept_failures.load(Ordering::Relaxed)),
                    ),
                ])
            })
            .collect();
        if let Value::Object(fields) = &mut value {
            fields.push(("workers".to_string(), Value::Array(workers)));
        }
        HttpResponse::json(value.render())
    }

    /// Round-trip a message to the admin thread; `None` means it is gone.
    fn admin_call<T>(&self, build: impl FnOnce(Sender<T>) -> AdminMsg) -> Option<T> {
        let (tx, rx) = mpsc::channel();
        self.admin.send(build(tx)).ok()?;
        rx.recv().ok()
    }

    fn admin_unavailable() -> HttpResponse {
        HttpResponse::error(500, "Internal Server Error", "admin thread unavailable")
    }
}

/// Resolve one binary record into the keyed query the table serves.
fn keyed_of<'a>(table: &VerdictTable, record: &BinaryRecord<'a>) -> KeyedRequest<'a> {
    let keyed = match record.keys {
        BinaryKeys::Ids {
            domain,
            hostname,
            script,
            method,
        } => {
            let keys = table.keys();
            KeyedRequest::new(
                keys.key_for_id(domain),
                keys.key_for_id(hostname),
                keys.key_for_id(script),
                keys.key_for_id(method),
            )
        }
        BinaryKeys::Strings {
            domain,
            hostname,
            script,
            method,
        } => table.resolve(&DecisionRequest::new(domain, hostname, script, method)),
    };
    match record.context {
        Some(context) => {
            keyed.with_url(context.url, context.source_hostname, context.resource_type)
        }
        None => keyed,
    }
}

/// Assemble a complete JSON single-decision body from preformatted parts.
fn json_single_body(table: &VerdictTable, request: &KeyedRequest<'_>) -> Vec<u8> {
    let prebuilt = table.prebuilt();
    match table.decide_prebuilt(request) {
        PrebuiltDecision::Fixed(index) => prebuilt.json_single(index).as_bytes().to_vec(),
        PrebuiltDecision::Surrogate(sf) => {
            let prefix = prebuilt.json_single_prefix().as_bytes();
            let mut out = Vec::with_capacity(prefix.len() + sf.json.len() + 1);
            out.extend_from_slice(prefix);
            out.extend_from_slice(sf.json.as_bytes());
            out.push(b'}');
            out
        }
    }
}

/// Assemble a complete binary single-decision body from preformatted parts.
fn binary_single_body(table: &VerdictTable, request: &KeyedRequest<'_>) -> Vec<u8> {
    match table.decide_prebuilt(request) {
        PrebuiltDecision::Fixed(index) => table.prebuilt().binary_single(index).to_vec(),
        PrebuiltDecision::Surrogate(sf) => {
            let header =
                frames::encode_surrogate_single_header(table.version(), sf.binary.len() as u32);
            let mut out = Vec::with_capacity(header.len() + sf.binary.len());
            out.extend_from_slice(&header);
            out.extend_from_slice(&sf.binary);
            out
        }
    }
}
