//! Domain-specific example: how shared CDNs and platform domains end up
//! *mixed*, reproducing the paper's `wp.com` walk-through (tracking
//! `pixel.wp.com` / `stats.wp.com`, functional `widgets.wp.com` / `c0.wp.com`,
//! mixed `i0.wp.com` / `i1.wp.com`).
//!
//! ```sh
//! cargo run --release --example mixed_cdn_study
//! ```

use trackersift_suite::prelude::*;

fn main() {
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::quickstart(),
        seed: 7,
        ..StudyConfig::default()
    });

    let domains = study.hierarchy.level(Granularity::Domain);
    let hostnames = study.hierarchy.level(Granularity::Hostname);

    // Pick the busiest mixed domain — the synthetic analogue of wp.com.
    let Some(mixed_domain) = domains
        .top_resources(Classification::Mixed, 1)
        .first()
        .copied()
    else {
        println!("No mixed domains in this corpus (try a different seed).");
        return;
    };
    println!(
        "Busiest mixed domain: {} ({} tracking / {} functional requests)\n",
        mixed_domain.key, mixed_domain.counts.tracking, mixed_domain.counts.functional
    );

    println!("Its hostnames and how TrackerSift classifies them:");
    let mut rows: Vec<_> = hostnames
        .resources
        .iter()
        .filter(|r| filterlist::registrable_domain(&r.key) == mixed_domain.key)
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.counts.total()));
    for row in rows {
        println!(
            "  {:<40} {:<10} tracking={:<6} functional={:<6}",
            row.key,
            row.classification.to_string(),
            row.counts.tracking,
            row.counts.functional
        );
    }

    // Which scripts drag tracking onto the mixed hostnames?
    let scripts = study.hierarchy.level(Granularity::Script);
    println!("\nTop scripts initiating requests to mixed hostnames:");
    for class in [
        Classification::Tracking,
        Classification::Functional,
        Classification::Mixed,
    ] {
        for row in scripts.top_resources(class, 2) {
            println!(
                "  [{}] {:<70} tracking={} functional={}",
                class, row.key, row.counts.tracking, row.counts.functional
            );
        }
    }

    println!(
        "\n{} of {} hostnames under mixed domains are themselves mixed ({:.0}%).",
        hostnames.resource_counts.mixed,
        hostnames.resource_counts.total(),
        hostnames.resource_counts.mixed_share()
    );
}
