//! The binary protocol end to end: train a sifter, start the verdict
//! server, complete the `GET /v1/keys` interning handshake, and serve
//! decisions over the length-prefixed binary framing — id-form singles,
//! a mixed batch, and the stale-epoch conflict a restore provokes.
//!
//! ```sh
//! cargo run --release --example binary_client
//! ```

use trackersift_suite::prelude::*;
use trackersift_suite::trackersift::LabeledRequest;
use trackersift_suite::trackersift_server::client::Client;
use trackersift_suite::trackersift_server::wire::{self, BinaryKeys, BinaryRecord};

fn main() {
    // 1. Train on a synthetic study and put the verdict server in front.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(300),
        seed: 11,
        ..StudyConfig::default()
    });
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(&study.requests);
    sifter.commit();
    let (writer, _reader) = sifter.into_concurrent();
    let server = VerdictServer::start(writer, ServerConfig::ephemeral()).expect("start server");
    let addr = server.local_addr();
    println!("Verdict server listening on http://{addr}");

    // 2. The handshake: one GET /v1/keys turns every interned string into
    //    a dense u32 id, scoped by the key epoch.
    let mut client = Client::connect(addr);
    let keys = client.fetch_keys();
    println!(
        "GET /v1/keys -> {} interned keys (epoch {}, version {})",
        keys.len(),
        keys.epoch,
        keys.version
    );

    // 3. Id-form single decisions: four u32s on the wire per request, a
    //    fixed 15-byte frame back for every non-surrogate verdict.
    let queries: Vec<&LabeledRequest> = study.requests.iter().take(5).collect();
    for request in &queries {
        let record = BinaryRecord {
            keys: BinaryKeys::Ids {
                domain: keys.id_of(&request.domain).unwrap_or(u32::MAX),
                hostname: keys.id_of(&request.hostname).unwrap_or(u32::MAX),
                script: keys.id_of(&request.initiator_script).unwrap_or(u32::MAX),
                method: keys.id_of(&request.initiator_method).unwrap_or(u32::MAX),
            },
            context: None,
        };
        let (version, decision) = client.decide_binary_single(keys.epoch, &record);
        println!(
            "  {} @ {} -> {decision} (table v{version})",
            request.initiator_method, request.hostname
        );
    }

    // 4. A batch: every record decided against one pinned table version.
    let records: Vec<BinaryRecord<'_>> = queries
        .iter()
        .map(|request| BinaryRecord {
            keys: BinaryKeys::Strings {
                domain: &request.domain,
                hostname: &request.hostname,
                script: &request.initiator_script,
                method: &request.initiator_method,
            },
            context: None,
        })
        .collect();
    let (version, decisions) = client.decide_binary_batch(keys.epoch, &records);
    println!(
        "POST /v1/decisions:batch -> {} decisions from table v{version}",
        decisions.len()
    );

    // 5. Restoring a snapshot re-interns the keys: the old epoch's ids
    //    are rejected with 409 Conflict, never silently misresolved.
    let (status, snapshot) = client.request("GET", "/v1/snapshot", None);
    assert_eq!(status, 200);
    let (status, _) = client.request("PUT", "/v1/snapshot", Some(&snapshot));
    assert_eq!(status, 200);
    let stale = BinaryRecord {
        keys: BinaryKeys::Ids {
            domain: 0,
            hostname: 0,
            script: 0,
            method: 0,
        },
        context: None,
    };
    let frame = wire::encode_binary_single(keys.epoch, &stale);
    let (status, _) = client.request_bytes(
        "POST",
        "/v1/decisions",
        Some(wire::BINARY_CONTENT_TYPE),
        &frame,
    );
    println!("stale-epoch id request after restore -> HTTP {status}");
    assert_eq!(status, 409, "stale epoch must conflict");

    // 6. Re-handshake and the id path works again.
    let mut client = Client::connect(addr);
    let refreshed = client.fetch_keys();
    assert!(refreshed.epoch > keys.epoch);
    println!(
        "re-fetched keys at epoch {} — binary id path live again",
        refreshed.epoch
    );

    server.shutdown();
    println!("Server drained and shut down cleanly.");
}
