//! Domain-specific example: automatically generating surrogate scripts for
//! mixed scripts (paper §5, "Blocking mixed scripts"). Content blockers ship
//! hand-written surrogates today; TrackerSift derives them from the
//! method-level classification and the call-stack divergence analysis.
//!
//! ```sh
//! cargo run --release --example surrogate_generation
//! ```

use trackersift_suite::prelude::*;

fn main() {
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::quickstart(),
        seed: 11,
        ..StudyConfig::default()
    });

    let surrogates = study.surrogates();
    println!(
        "{} mixed scripts found; generated a surrogate for each.\n",
        surrogates.len()
    );

    let total_suppressed: u64 = surrogates
        .iter()
        .map(|s| s.suppressed_tracking_requests)
        .sum();
    let total_preserved: u64 = surrogates
        .iter()
        .map(|s| s.preserved_functional_requests)
        .sum();
    println!(
        "Across all surrogates: {total_suppressed} tracking requests suppressed, {total_preserved} functional requests preserved.\n"
    );

    // Show the most interesting surrogate: the one with a guarded (mixed)
    // method, i.e. where per-method removal alone is not enough and the
    // call-stack predicate earns its keep.
    let interesting = surrogates
        .iter()
        .find(|s| s.guarded() > 0)
        .or_else(|| surrogates.first());
    match interesting {
        Some(surrogate) => {
            println!(
                "Surrogate for {} — {} methods kept, {} stubbed, {} guarded:\n",
                surrogate.script_url,
                surrogate.kept(),
                surrogate.stubbed(),
                surrogate.guarded()
            );
            println!("{}", surrogate.render());
        }
        None => println!("No mixed scripts in this corpus; nothing to shim."),
    }
}
