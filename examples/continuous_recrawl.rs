//! Continuous operation end to end: an evolving websim web behind a
//! scheduler-attached verdict server. Each `POST /v1/tick` mutates the
//! ecosystem (CDN rotation, path rotation, pixel emergence), re-crawls it
//! through the serving writer, and commits — and the resulting drift is
//! fetched back over `GET /v1/revisions?diff=a..b` and asserted
//! byte-identical to an identically-seeded in-process run.
//!
//! ```sh
//! cargo run --release --example continuous_recrawl
//! ```

use trackersift_suite::prelude::*;
use trackersift_suite::trackersift::{diff_revisions, frames};
use trackersift_suite::trackersift_server::client::Client;

const SEED: u64 = 7;
const SITES: usize = 30;
const EPOCHS: u64 = 5;

fn scheduler() -> Scheduler {
    Scheduler::new(
        SchedulerConfig::new(SEED)
            .with_sites(SITES)
            .with_mutation(MutationConfig::churny())
            .with_keying(ScriptKeying::Fingerprint),
    )
}

fn main() {
    // 1. The in-process twin: the same seed ticked directly against a
    //    writer, no server involved. This is the ground truth the wire
    //    surface is checked against.
    let mut twin = scheduler();
    let (mut twin_writer, _twin_reader) = twin.sifter_pair();
    for _ in 0..EPOCHS {
        twin.tick(&mut twin_writer);
    }

    // 2. The served run: an identical scheduler attached to the verdict
    //    server, driven entirely over the wire.
    let driver = scheduler();
    let (writer, _reader) = driver.sifter_pair();
    let server =
        VerdictServer::start_with_scheduler(writer, ServerConfig::ephemeral(), Box::new(driver))
            .expect("start verdict server with scheduler");
    let addr = server.local_addr();
    println!("Verdict server with scheduler listening on http://{addr}");

    let mut client = Client::connect(addr);
    for _ in 0..EPOCHS {
        let (status, body) = client.request("POST", "/v1/tick", None);
        assert_eq!(status, 200, "{body}");
        println!("POST /v1/tick -> {body}");
    }

    // 3. The full revision ring over the wire is byte-identical to the
    //    twin's — corpus evolution, crawl order, and commit folding all
    //    replay exactly from the seed.
    let (status, ring) = client.request("GET", "/v1/revisions", None);
    assert_eq!(status, 200);
    let local_ring =
        frames::revision_list_value(twin_writer.published_version(), twin_writer.revisions())
            .render();
    assert_eq!(
        ring, local_ring,
        "served ring must equal the in-process ring"
    );
    println!(
        "GET /v1/revisions -> {} bytes, byte-identical to the in-process ring",
        ring.len()
    );

    // 4. Commit-level drift between any two revisions, also byte-exact.
    let newest = twin_writer.published_version();
    let oldest = newest - EPOCHS + 1;
    let expected = diff_revisions(twin_writer.revisions(), oldest, newest).expect("local diff");
    let target = format!("/v1/revisions?diff={oldest}..{newest}");
    let (status, diff) = client.request("GET", &target, None);
    assert_eq!(status, 200);
    assert_eq!(diff, frames::revision_diff_value(&expected).render());
    println!(
        "GET {target} -> {} changes across {EPOCHS} epochs, byte-identical to diff_revisions()",
        expected.changes.len()
    );

    // 5. The typed client agrees, and the scheduler's gauges surface in
    //    /v1/stats.
    let typed = client
        .fetch_revision_diff(oldest, newest)
        .expect("typed diff");
    assert_eq!(typed, expected);
    let (status, stats) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    assert!(stats.contains("\"scheduler\":"), "{stats}");
    println!("GET /v1/stats carries the scheduler section");

    server.shutdown();
    println!("Server drained and shut down cleanly.");
}
