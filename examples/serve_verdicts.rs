//! Serving walkthrough: build a `Sifter` once, persist its trained state,
//! reload it in a "fresh process", query verdicts in bulk, and keep
//! ingesting new observations incrementally — the deployment loop the
//! paper motivates for a content blocker or proxy.
//!
//! ```sh
//! cargo run --release --example serve_verdicts
//! ```

use std::time::Instant;
use trackersift_suite::prelude::*;

fn main() {
    // 1. Train: run the batch pipeline once and produce a serving handle.
    //    Hold back the last 20% of the labeled traffic to replay later as
    //    the "live" stream.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(400),
        seed: 7,
        ..StudyConfig::default()
    });
    let split = study.requests.len() * 8 / 10;
    let (historical, live) = study.requests.split_at(split);

    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(historical);
    sifter.commit();
    // One consolidated stats struct — the same source of truth the verdict
    // server's /v1/stats endpoint serializes.
    let stats = sifter.service_stats();
    println!(
        "Trained on {} requests: {} domains / {} hostnames / {} scripts / {} methods committed.",
        stats.ingest.committed,
        stats.resources[Granularity::Domain.index()],
        stats.resources[Granularity::Hostname.index()],
        stats.resources[Granularity::Script.index()],
        stats.resources[Granularity::Method.index()],
    );

    // 2. Snapshot: export the trained state (versioned JSON through the
    //    crawl codec) exactly as a long-running service would on shutdown.
    let snapshot = sifter.snapshot();
    let path = std::env::temp_dir().join("trackersift_sifter.json");
    std::fs::write(&path, snapshot.to_json_string()).expect("write snapshot");
    println!(
        "Snapshot v{} written to {} ({} keys, {} count cells).",
        SifterSnapshot::FORMAT_VERSION,
        path.display(),
        snapshot.key_count(),
        snapshot.cell_count(),
    );

    // 3. Reload: a fresh process restores the snapshot and serves
    //    immediately — no re-crawl, no re-label, bitwise-identical state.
    let text = std::fs::read_to_string(&path).expect("read snapshot");
    let reloaded = SifterSnapshot::parse(&text).expect("parse snapshot");
    let mut server = Sifter::builder().restore(&reloaded).expect("restore");
    assert_eq!(server.hierarchy(), sifter.hierarchy());
    println!("Restored: {} observations, serving.", server.observed());

    // 4. Query: bulk verdicts over the live traffic. The per-verdict walk
    //    is allocation-free; the reusable buffer makes the batch loop
    //    allocation-free too.
    let queries: Vec<VerdictRequest<'_>> = live.iter().map(VerdictRequest::from_labeled).collect();
    let mut verdicts = Vec::new();
    let start = Instant::now();
    server.verdict_batch_into(&queries, &mut verdicts);
    let elapsed = start.elapsed();
    let blocked = verdicts.iter().filter(|v| v.should_block()).count();
    let unknown = verdicts.iter().filter(|v| **v == Verdict::Unknown).count();
    println!(
        "\nServed {} verdicts in {:.2?} ({:.0} verdicts/sec): {} block, {} unknown.",
        verdicts.len(),
        elapsed,
        verdicts.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        blocked,
        unknown,
    );

    // 5. Ingest: feed the live stream back as observations and commit. The
    //    commit reclassifies only the dirty slice of the hierarchy, and the
    //    result is provably identical to retraining from scratch.
    server.observe_all(live);
    let start = Instant::now();
    let stats = server.commit();
    println!(
        "\nIncremental commit of {} observations reclassified {} resources in {:.2?}.",
        stats.observations,
        stats.reclassified(),
        start.elapsed(),
    );
    let mut scratch = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    scratch.observe_all(&study.requests);
    scratch.commit();
    assert_eq!(server.hierarchy(), scratch.hierarchy());
    assert_eq!(server.hierarchy(), study.hierarchy);
    println!("observe + commit == from-scratch classification: verified.");

    // 6. Verdicts now reflect the new evidence.
    let verdict = server.verdict(&VerdictRequest::from_labeled(&live[0]));
    println!("\nFirst live request now resolves to: {verdict}");

    // 7. Go concurrent: split the sifter into a writer and lock-free reader
    //    handles, so ingestion no longer blocks serving at all (see
    //    examples/concurrent_serving.rs for the full multi-threaded loop).
    let (mut writer, reader) = server.into_concurrent();
    writer.observe_all(live);
    writer.commit();
    let stats = writer.service_stats();
    println!(
        "Concurrent split: reader serves table version {} ({} observations) lock-free.",
        reader.version(),
        stats.ingest.committed,
    );
    assert_eq!(reader.version(), stats.version);

    // 8. Enforce: the decision layer composes the verdict, the surrogate
    //    plan for mixed scripts, and the filter-list backstop into the one
    //    action a blocker takes per request. `examples/verdict_server.rs`
    //    serves exactly these decisions over HTTP.
    let decisions = reader.decide_batch(
        &live
            .iter()
            .map(DecisionRequest::from_labeled)
            .collect::<Vec<_>>(),
    );
    let blocked = decisions
        .iter()
        .filter(|decision| matches!(decision, Decision::Block(_)))
        .count();
    let surrogates = decisions
        .iter()
        .filter(|decision| matches!(decision, Decision::Surrogate(_)))
        .count();
    println!(
        "Decisions over the live slice: {} block / {} surrogate / {} other.",
        blocked,
        surrogates,
        decisions.len() - blocked - surrogates,
    );
}
