//! The full reproduction at configurable scale: every table and figure from
//! one study, printed to stdout. Equivalent to the `experiments` binary in
//! the bench crate but driven through the public library API, so it doubles
//! as an end-to-end API example.
//!
//! ```sh
//! # default 2 000 sites; pass a number to change the scale
//! cargo run --release --example full_study -- 10000
//! ```

use trackersift::report::{render_headline, render_sensitivity_csv, render_table1, render_table2};
use trackersift_suite::prelude::*;

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    let study = Study::run(StudyConfig {
        profile: CorpusProfile::paper().with_sites(sites),
        seed: 2021,
        ..StudyConfig::default()
    });

    println!("== TrackerSift full study: {sites} sites, seed 2021 ==\n");
    println!(
        "Captured {} requests, {} script-initiated ({} tracking / {} functional by the filter-list oracle).\n",
        study.crawl_summary.total_requests,
        study.requests.len(),
        study.label_stats.tracking,
        study.label_stats.functional
    );

    print!("{}", render_table1(&study.hierarchy));
    println!();
    print!("{}", render_table2(&study.hierarchy));
    println!();
    print!(
        "{}",
        render_headline(&trackersift::headline(&study.hierarchy))
    );
    println!();

    println!("Figure 3 (band masses per granularity):");
    for granularity in Granularity::ALL {
        let histogram = RatioHistogram::paper_bins(study.hierarchy.level(granularity));
        println!(
            "  {:<10} functional={:<7} mixed={:<7} tracking={:<7}",
            granularity.name(),
            histogram.functional_mass(2.0),
            histogram.mixed_mass(2.0),
            histogram.tracking_mass(2.0)
        );
    }

    println!("\nFigure 4 (threshold sensitivity):");
    print!("{}", render_sensitivity_csv(&study.sensitivity_sweep()));

    let callstacks = study.callstack_analysis();
    println!(
        "\nFigure 5: {} mixed methods remain; {:.0}% separable via call-stack divergence.",
        callstacks.mixed_methods(),
        callstacks.separable_share()
    );

    let breakage = study.breakage_study(10);
    let (major, minor, none) = breakage.grade_counts();
    println!(
        "\nTable 3: {major} major / {minor} minor / {none} none breakage on {} sampled sites.",
        breakage.rows.len()
    );
}
