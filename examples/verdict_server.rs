//! The wire deployment loop: train a sifter, start the HTTP/1.1 verdict
//! server on its lock-free reader handles, and talk to it the way any
//! client would — over a raw `TcpStream`, no HTTP library required.
//!
//! ```sh
//! cargo run --release --example verdict_server
//! ```
//!
//! With `--replica-of <host:port>` the process instead joins a fleet as a
//! **read-only replica** of an already-running primary: it bootstraps
//! from the primary's full snapshot, serves decisions from the followed
//! state, and keeps polling delta snapshots until killed.
//!
//! ```sh
//! cargo run --release --example verdict_server -- --replica-of 127.0.0.1:8377
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use trackersift_suite::prelude::*;

/// Issue one HTTP/1.1 request and return (status line, body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status = reply.lines().next().unwrap_or_default().to_string();
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

/// `--replica-of` mode: follow a primary until killed, reporting the
/// replication gauges once per second.
fn run_replica(upstream: &str) -> ! {
    let replica = trackersift_suite::trackersift_replica::start(ReplicaConfig::new(upstream))
        .expect("replica bootstrap (is the primary running?)");
    println!(
        "Replica of {} serving on http://{}",
        replica.status().upstream(),
        replica.local_addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        let status = replica.status();
        println!(
            "  applied version {} (lag {}, bootstraps {}, sync errors {})",
            status.applied_version(),
            status.lag(),
            status.bootstraps(),
            status.sync_errors()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(position) = args.iter().position(|arg| arg == "--replica-of") {
        let upstream = args
            .get(position + 1)
            .expect("--replica-of needs a host:port argument");
        run_replica(upstream);
    }

    // 1. Train on a synthetic study and split into the concurrent pair.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(300),
        seed: 11,
        ..StudyConfig::default()
    });
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(&study.requests);
    sifter.commit();
    let (writer, _reader) = sifter.into_concurrent();

    // 2. Serve: fixed worker pool, one lock-free reader handle per worker,
    //    the writer owned by the admin thread.
    let server = VerdictServer::start(writer, ServerConfig::ephemeral()).expect("start server");
    let addr = server.local_addr();
    println!("Verdict server listening on http://{addr}");

    // 3. Liveness + one decision for a request from the corpus.
    let (status, body) = http(addr, "GET", "/healthz", "");
    println!("GET /healthz -> {status} {body}");

    let request = &study.requests[0];
    let query = format!(
        r#"{{"domain":{:?},"hostname":{:?},"script":{:?},"method":{:?}}}"#,
        request.domain, request.hostname, request.initiator_script, request.initiator_method
    );
    let (status, body) = http(addr, "POST", "/v1/decisions", &query);
    println!("POST /v1/decisions -> {status}\n  {body}");

    // 4. Stats: the same ServiceStats the in-process API exposes, plus
    //    per-worker counters.
    let (_, stats) = http(addr, "GET", "/v1/stats", "");
    println!("GET /v1/stats ->\n  {stats}");

    // 5. Snapshot save/load over the wire: export the trained state, then
    //    import it back (e.g. into a standby replica).
    let (_, snapshot) = http(addr, "GET", "/v1/snapshot", "");
    let path = std::env::temp_dir().join("trackersift_server_snapshot.json");
    std::fs::write(&path, &snapshot).expect("write snapshot");
    println!(
        "GET /v1/snapshot -> {} bytes saved to {}",
        snapshot.len(),
        path.display()
    );
    let restored = std::fs::read_to_string(&path).expect("read snapshot");
    let (status, body) = http(addr, "PUT", "/v1/snapshot", &restored);
    println!("PUT /v1/snapshot -> {status} {body}");

    // 6. Ingest over the wire, commit, and watch the served table move on.
    let observation = r#"{"observations":[
        {"domain":"freshtracker.com","hostname":"px.freshtracker.com",
         "script":"https://pub.com/app.js","method":"beacon","tracking":true}
    ]}"#;
    let (_, body) = http(addr, "POST", "/v1/observations", observation);
    println!("POST /v1/observations -> {body}");
    let (_, body) = http(addr, "POST", "/v1/commit", "");
    println!("POST /v1/commit -> {body}");

    server.shutdown();
    println!("Server drained and shut down cleanly.");
}
