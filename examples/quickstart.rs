//! Quickstart: run the whole TrackerSift pipeline on a small synthetic
//! corpus, print the paper's two headline tables through the serving API,
//! and answer a few per-request verdicts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trackersift::report::{render_headline, render_table1, render_table2};
use trackersift_suite::prelude::*;

fn main() {
    // 1. Generate a corpus (the stand-in for crawling 100K live sites),
    //    crawl it with the instrumented browser simulator, label every
    //    script-initiated request with EasyList + EasyPrivacy, and run the
    //    hierarchical classifier. `Study::run` does all of that.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::quickstart(), // 1 000 sites
        seed: 42,
        ..StudyConfig::default()
    });

    println!(
        "Crawled {} sites, captured {} requests ({} script-initiated).\n",
        study.crawl_summary.sites,
        study.crawl_summary.total_requests,
        study.requests.len()
    );

    // 2. The study is a *producer* of serving handles: train a Sifter and
    //    read everything downstream through it. Its `hierarchy()` export is
    //    byte-identical to the study's own batch classification.
    let sifter = study.sifter();
    let hierarchy = sifter.hierarchy();
    assert_eq!(hierarchy, study.hierarchy);

    // 3. The paper's Table 1 (requests) and Table 2 (resources).
    print!("{}", render_table1(&hierarchy));
    println!();
    print!("{}", render_table2(&hierarchy));
    println!();

    // 4. The headline numbers from the abstract.
    print!("{}", render_headline(&trackersift::headline(&hierarchy)));

    // 5. Per-request verdicts — what a deployed blocker would ask. The
    //    verdict walk is allocation-free for already-interned keys.
    println!("\nSample verdicts:");
    for request in study.requests.iter().take(5) {
        let verdict = sifter.verdict(&VerdictRequest::from_labeled(request));
        println!(
            "  {:<60} -> {} ({})",
            request.url,
            verdict,
            if verdict.should_block() {
                "block"
            } else {
                "allow"
            }
        );
    }

    // 6. A taste of the finer-grained artifacts: the first mixed script and
    //    its surrogate.
    if let Some(surrogate) = study.surrogates().first() {
        println!(
            "\nExample surrogate for the mixed script {}:\n",
            surrogate.script_url
        );
        println!("{}", surrogate.render());
    }
}
