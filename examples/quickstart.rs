//! Quickstart: run the whole TrackerSift pipeline on a small synthetic
//! corpus and print the paper's two headline tables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trackersift::report::{render_headline, render_table1, render_table2};
use trackersift_suite::prelude::*;

fn main() {
    // 1. Generate a corpus (the stand-in for crawling 100K live sites),
    //    crawl it with the instrumented browser simulator, label every
    //    script-initiated request with EasyList + EasyPrivacy, and run the
    //    hierarchical classifier. `Study::run` does all of that.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::quickstart(), // 1 000 sites
        seed: 42,
        ..StudyConfig::default()
    });

    println!(
        "Crawled {} sites, captured {} requests ({} script-initiated).\n",
        study.crawl_summary.sites,
        study.crawl_summary.total_requests,
        study.requests.len()
    );

    // 2. The paper's Table 1 (requests) and Table 2 (resources).
    print!("{}", render_table1(&study.hierarchy));
    println!();
    print!("{}", render_table2(&study.hierarchy));
    println!();

    // 3. The headline numbers from the abstract.
    print!(
        "{}",
        render_headline(&trackersift::headline(&study.hierarchy))
    );

    // 4. A taste of the finer-grained artifacts: the first mixed script and
    //    its surrogate.
    if let Some(surrogate) = study.surrogates().first() {
        println!(
            "\nExample surrogate for the mixed script {}:\n",
            surrogate.script_url
        );
        println!("{}", surrogate.render());
    }
}
