//! Concurrent serving walkthrough: train once, split the sifter into a
//! `SifterWriter` + cloneable lock-free `SifterReader` handles, then serve
//! verdicts from several threads while the writer keeps ingesting and
//! committing — the read-dominated deployment loop of a content blocker or
//! proxy enforcement point.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};
use trackersift_suite::prelude::*;

fn main() {
    // 1. Train on a crawl and split: the writer keeps the incremental
    //    dirty-set machinery, the reader handle clones per serving thread.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(400),
        seed: 7,
        ..StudyConfig::default()
    });
    let split = study.requests.len() * 8 / 10;
    let (historical, live) = study.requests.split_at(split);

    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(historical);
    sifter.commit();
    let (mut writer, reader) = sifter.into_concurrent();
    println!(
        "Trained on {} requests; published table version {}.",
        reader.committed(),
        reader.version(),
    );

    // 2. Serve from 4 threads while the writer ingests the live stream in
    //    batches. Each `verdict_batch_into` pins one immutable table, so a
    //    batch always reflects exactly one committed state — commits land
    //    atomically between batches, never inside one.
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..4 {
            let reader = reader.clone(); // one lock-free handle per thread
            let stop = &stop;
            let queries: Vec<VerdictRequest<'_>> =
                live.iter().map(VerdictRequest::from_labeled).collect();
            workers.push(scope.spawn(move || {
                let mut verdicts = Vec::new();
                let mut served = 0u64;
                let mut blocked = 0u64;
                while !stop.load(Ordering::Acquire) {
                    reader.verdict_batch_into(&queries, &mut verdicts);
                    served += verdicts.len() as u64;
                    blocked += verdicts.iter().filter(|v| v.should_block()).count() as u64;
                }
                (served, blocked)
            }));
        }

        // The writer thread: observe + commit, verdicts flip atomically.
        for chunk in live.chunks(500) {
            writer.observe_all(chunk);
            let stats = writer.commit();
            println!(
                "commit v{}: +{} observations, {} resources reclassified",
                writer.sifter().commits(),
                stats.observations,
                stats.reclassified(),
            );
            thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Release);

        let mut served = 0u64;
        let mut blocked = 0u64;
        for worker in workers {
            let (s, b) = worker.join().expect("reader thread");
            served += s;
            blocked += b;
        }
        let elapsed = start.elapsed();
        println!(
            "\n4 readers served {served} verdicts ({blocked} block) in {elapsed:.2?} \
             ({:.0} verdicts/sec aggregate) while {} commits published.",
            served as f64 / elapsed.as_secs_f64().max(1e-9),
            writer.sifter().commits(),
        );
    });

    // 3. The final concurrent state is exactly what a batch retrain over
    //    everything would produce.
    let mut scratch = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    scratch.observe_all(&study.requests);
    scratch.commit();
    assert_eq!(writer.sifter().hierarchy(), scratch.hierarchy());
    println!("Concurrent ingestion == from-scratch classification: verified.");
}
