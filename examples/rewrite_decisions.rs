//! URL rewriting end to end: build a rule-driven [`UrlRewriter`] from the
//! curated defaults and EasyList `$removeparam` rules, attach it to a
//! trained sifter so hierarchy-mixed requests whose URLs carry identifiers
//! resolve to `Decision::Rewrite`, and serve those rewrites over both wire
//! codecs (JSON and the length-prefixed binary protocol).
//!
//! ```sh
//! cargo run --release --example rewrite_decisions
//! ```

use trackersift_suite::prelude::*;
use trackersift_suite::trackersift::frames;
use trackersift_suite::trackersift_server::client::Client;
use trackersift_suite::trackersift_server::wire::{BinaryRecord, DecisionMessage};

fn main() {
    // 1. A standalone rewriter from the curated defaults: strip global
    //    identifier parameters (`utm_*`, `gclid`, `fbclid`, ...) and unwrap
    //    redirect wrappers. The hot path allocates only when a URL actually
    //    changes — a clean URL comes back as `None`.
    let rewriter = RewriterBuilder::new().default_rules().build();
    println!("Curated default rules:");
    for url in [
        "https://news.example/story?id=9&utm_source=mail&gclid=CjwK1",
        "https://out.example/r?url=https%3A%2F%2Fshop.example%2Fp%3Fid%3D7%26fbclid%3DIwAR9",
        "https://shop.example/p?id=7",
    ] {
        match rewriter.rewrite(url) {
            Some(rewritten) => println!("  {url}\n    -> {}", rewritten.url()),
            None => println!("  {url}\n    -> unchanged (zero-allocation pass)"),
        }
    }

    // 2. `$removeparam` rules ride in from filter lists: a match-all
    //    pattern strips globally, while `$domain=` entries and `||host^`
    //    anchors scope the strip to one registrable domain.
    let lists = FilterEngine::from_lists(&[(
        ListKind::EasyPrivacy,
        "*$removeparam=session_ref\n||shop.example^$removeparam=affil\n",
    )]);
    let scoped = RewriterBuilder::new()
        .filter_rules(lists.removeparam_rules())
        .build();
    let on_site = scoped
        .rewrite("https://www.shop.example/cart?sku=1&affil=x&session_ref=22")
        .expect("both rules match on shop.example");
    assert_eq!(on_site.url(), "https://www.shop.example/cart?sku=1");
    let off_site = scoped
        .rewrite("https://news.example/a?affil=x&session_ref=22")
        .expect("only the global rule matches elsewhere");
    assert_eq!(off_site.url(), "https://news.example/a?affil=x");
    println!(
        "\n$removeparam scoping: `affil` stripped on shop.example only, `session_ref` everywhere."
    );

    // 3. Attach a rewriter to a trained sifter. The decision precedence is
    //    Allow < Rewrite < Surrogate < Block: a mixed resource with no
    //    surrogate plan falls back to rewriting the identifiers out of the
    //    URL instead of observing it untouched.
    let mut sifter = Sifter::builder()
        .rewriter(RewriterBuilder::new().default_rules().build())
        .build();
    for flag in [true, false, true, false, true, false] {
        sifter.observe_parts("hub.com", "w.hub.com", "s.js", "sync", flag);
    }
    sifter.commit();
    let request = DecisionRequest::new("hub.com", "z.hub.com", "s2.js", "m").with_url(
        "https://z.hub.com/api?id=7&gclid=abc&utm_source=mail",
        "pub.com",
        ResourceType::Xhr,
    );
    let decision = sifter.decide(&request);
    let Decision::Rewrite(rewritten) = &decision else {
        panic!("mixed domain + identifier URL must rewrite, got {decision}");
    };
    println!(
        "\nIn-process decision for the mixed request: rewrite -> {}",
        rewritten.url()
    );

    // 4. At study scale: the synthetic corpus decorates tracking endpoints
    //    with identifier params and redirect wrappers, so a rewriter-armed
    //    sifter turns a slice of the would-be observations into rewrites.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(300),
        seed: 13,
        ..StudyConfig::default()
    });
    let split = study.requests.len() * 8 / 10;
    let (historical, live) = study.requests.split_at(split);
    let mut served = Sifter::builder()
        .thresholds(study.config.thresholds)
        .engine(study.engine.clone())
        .rewriter(RewriterBuilder::new().default_rules().build())
        .build();
    served.observe_all(historical);
    served.commit();
    let queries: Vec<DecisionRequest<'_>> =
        live.iter().map(DecisionRequest::from_labeled).collect();
    let (writer, reader) = served.into_concurrent();
    let decisions = reader.decide_batch(&queries);
    let mut counts = [0usize; 5];
    for decision in &decisions {
        let slot = match decision {
            Decision::Block(_) => 0,
            Decision::Surrogate(_) => 1,
            Decision::Rewrite(_) => 2,
            Decision::Allow(_) => 3,
            Decision::Observe => 4,
        };
        counts[slot] += 1;
    }
    println!(
        "\nLive slice of {} requests: {} block / {} surrogate / {} rewrite / {} allow / {} observe.",
        decisions.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
    );

    // 5. Over the wire, both codecs carry the rewrite byte-identically to
    //    the in-process decision: JSON as {"action":"rewrite","url":...},
    //    binary as an ACTION_REWRITE frame with a length-prefixed URL.
    let server = VerdictServer::start(writer, ServerConfig::ephemeral()).expect("start server");
    let mut client = Client::connect(server.local_addr());
    let rewritten_live = decisions
        .iter()
        .position(|decision| matches!(decision, Decision::Rewrite(_)))
        .map(|index| &live[index])
        .expect("the decorated corpus produces rewrites");
    let message = DecisionMessage::new(
        &rewritten_live.domain,
        &rewritten_live.hostname,
        &rewritten_live.initiator_script,
        &rewritten_live.initiator_method,
    )
    .with_url(
        &rewritten_live.url,
        &rewritten_live.site_domain,
        rewritten_live.resource_type,
    );
    let in_process = reader.decide(&message.as_request());
    let (status, body) = client.request(
        "POST",
        "/v1/decisions",
        Some(&message.to_json_value().render()),
    );
    assert_eq!(status, 200);
    let expected = format!(
        r#"{{"version":{},"decision":{}}}"#,
        reader.version(),
        frames::decision_value(&in_process).render()
    );
    assert_eq!(
        body, expected,
        "wire JSON must match the in-process decision"
    );
    println!("\nJSON over the wire: {body}");

    let (_, binary) = client.decide_binary_single(0, &BinaryRecord::from_message(&message));
    assert_eq!(
        binary, in_process,
        "binary codec must round-trip the rewrite"
    );
    match binary {
        Decision::Rewrite(rewritten) => {
            println!(
                "Binary over the wire: ACTION_REWRITE -> {}",
                rewritten.url()
            )
        }
        other => panic!("expected a rewrite over the binary codec, got {other}"),
    }

    server.shutdown();
    println!("Server drained and shut down cleanly.");
}
