//! A primary plus a two-replica fleet over loopback: the replicas
//! bootstrap from the primary's full snapshot, track its commits through
//! delta snapshots, and — the consistency contract — answer every query
//! **byte-identically** to the primary once they hold the same version.
//!
//! ```sh
//! cargo run --release --example replica_fleet
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use trackersift_suite::prelude::*;
use trackersift_suite::trackersift_replica::{start, ReplicaConfig, ReplicaServer};

/// Issue one HTTP/1.1 request and return (status code, body bytes).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let split = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    (status, reply[split + 4..].to_vec())
}

/// Wait until `replica` has applied `version` (bounded).
fn await_version(replica: &ReplicaServer, version: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.status().applied_version() < version {
        assert!(
            Instant::now() < deadline,
            "replica stuck at version {}",
            replica.status().applied_version()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    // 1. A primary trained on a synthetic study.
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(200),
        seed: 23,
        ..StudyConfig::default()
    });
    let mut sifter = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    sifter.observe_all(&study.requests);
    sifter.commit();
    let (writer, _reader) = sifter.into_concurrent();
    let primary = VerdictServer::start(writer, ServerConfig::ephemeral()).expect("primary");
    println!("primary on http://{}", primary.local_addr());

    // 2. Two replicas bootstrap from it (full snapshot, then delta polls).
    let fleet: Vec<ReplicaServer> = (0..2)
        .map(|i| {
            let mut config = ReplicaConfig::new(primary.local_addr().to_string());
            config.poll_interval = Duration::from_millis(25);
            let replica = start(config).expect("replica bootstrap");
            println!(
                "replica {i} on http://{} at version {}",
                replica.local_addr(),
                replica.status().applied_version()
            );
            replica
        })
        .collect();

    // 3. Byte-identity at the same version: every fleet member answers a
    //    sample of corpus queries with exactly the primary's bytes.
    let sample: Vec<String> = study
        .requests
        .iter()
        .step_by(study.requests.len() / 25 + 1)
        .map(|request| {
            format!(
                r#"{{"domain":{:?},"hostname":{:?},"script":{:?},"method":{:?}}}"#,
                request.domain,
                request.hostname,
                request.initiator_script,
                request.initiator_method
            )
        })
        .collect();
    let mut checked = 0usize;
    for query in &sample {
        let (status, primary_body) = http(primary.local_addr(), "POST", "/v1/decisions", query);
        assert_eq!(status, 200);
        for replica in &fleet {
            let (status, replica_body) = http(replica.local_addr(), "POST", "/v1/decisions", query);
            assert_eq!(status, 200);
            assert_eq!(
                primary_body, replica_body,
                "fleet answer diverged for {query}"
            );
        }
        checked += 1;
    }
    println!("byte-identical on {checked} sampled queries across the fleet");

    // 4. Drift: a fresh commit on the primary flows to every replica as a
    //    small delta, and the fleet converges on the new verdict.
    let observation = r#"{"observations":[
        {"domain":"freshtracker.com","hostname":"px.freshtracker.com",
         "script":"https://pub.com/app.js","method":"beacon","tracking":true}
    ]}"#;
    let (status, _) = http(
        primary.local_addr(),
        "POST",
        "/v1/observations",
        observation,
    );
    assert_eq!(status, 200);
    let (status, commit) = http(primary.local_addr(), "POST", "/v1/commit", "");
    assert_eq!(status, 200);
    println!("primary commit -> {}", String::from_utf8_lossy(&commit));
    for replica in &fleet {
        await_version(replica, 2);
    }
    let query = r#"{"domain":"freshtracker.com","hostname":"px.freshtracker.com","script":"https://pub.com/app.js","method":"beacon"}"#;
    let (_, primary_body) = http(primary.local_addr(), "POST", "/v1/decisions", query);
    for (i, replica) in fleet.iter().enumerate() {
        let (_, replica_body) = http(replica.local_addr(), "POST", "/v1/decisions", query);
        assert_eq!(
            primary_body, replica_body,
            "replica {i} diverged after drift"
        );
        println!(
            "replica {i} caught up: version {}, bootstraps {}, lag {}",
            replica.status().applied_version(),
            replica.status().bootstraps(),
            replica.status().lag()
        );
    }

    // 5. Replicas are read-only: mutations conflict, pointing at the
    //    primary.
    let (status, detail) = http(fleet[0].local_addr(), "POST", "/v1/commit", "");
    assert_eq!(status, 409);
    println!(
        "replica refuses mutation: 409 {}",
        String::from_utf8_lossy(&detail)
    );

    for replica in fleet {
        replica.shutdown();
    }
    primary.shutdown();
    println!("fleet drained and shut down cleanly.");
}
