//! Domain-specific example: the breakage audit (paper §5, Table 3). Blocks
//! the scripts TrackerSift classified as mixed on a sample of sites and
//! reports whether core or secondary functionality broke — the evidence that
//! mixed resources cannot be safely blocked by today's content blockers.
//!
//! ```sh
//! cargo run --release --example breakage_audit
//! ```

use trackersift_suite::prelude::*;

fn main() {
    let study = Study::run(StudyConfig {
        profile: CorpusProfile::quickstart(),
        seed: 23,
        ..StudyConfig::default()
    });

    let sample_size = 10;
    let breakage = study.breakage_study(sample_size);

    println!(
        "Blocking mixed scripts on {} sampled sites (of {} crawled):\n",
        breakage.rows.len(),
        study.crawl_summary.sites
    );
    println!(
        "{:<28} {:<36} {:<8} Broken features",
        "Website", "Blocked mixed script(s)", "Grade"
    );
    for row in &breakage.rows {
        println!(
            "{:<28} {:<36} {:<8} {}",
            row.website,
            row.blocked_scripts.join(", "),
            row.breakage.to_string(),
            if row.broken_features.is_empty() {
                "-".into()
            } else {
                row.broken_features.join(", ")
            }
        );
    }

    let (major, minor, none) = breakage.grade_counts();
    println!(
        "\n{major} major, {minor} minor, {none} none — {:.0}% of sites break when their mixed scripts are blocked.",
        breakage.any_breakage_share()
    );
    println!("(The paper observes major or minor breakage on 9 of its 10 manually audited sites.)");
}
