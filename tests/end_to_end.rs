//! Cross-crate integration tests: corpus → crawl → label → hierarchy →
//! downstream analyses, checking the invariants the paper's methodology
//! relies on.

use trackersift_suite::prelude::*;

fn study(sites: usize, seed: u64) -> Study {
    Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(sites),
        seed,
        ..StudyConfig::default()
    })
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = study(60, 5);
    let b = study(60, 5);
    assert_eq!(a.hierarchy, b.hierarchy);
    assert_eq!(a.label_stats, b.label_stats);
    assert_eq!(a.database, b.database);
}

#[test]
fn request_conservation_across_the_hierarchy() {
    let study = study(120, 9);
    let hierarchy = &study.hierarchy;
    // Level 0 input = all labeled script-initiated requests.
    assert_eq!(
        hierarchy.levels[0].input_requests,
        study.requests.len() as u64
    );
    // Each level's input is exactly the previous level's mixed requests.
    for window in hierarchy.levels.windows(2) {
        assert_eq!(window[1].input_requests, window[0].request_counts.mixed);
    }
    // Every request is either attributed at some level or left in the residue.
    let attributed: u64 = hierarchy
        .levels
        .iter()
        .map(|l| l.request_counts.tracking + l.request_counts.functional)
        .sum();
    assert_eq!(
        attributed + hierarchy.unattributed_requests,
        hierarchy.total_requests
    );
}

#[test]
fn hierarchy_reproduces_the_papers_qualitative_shape() {
    // The quantitative calibration is checked (and recorded) by the
    // experiment binaries; here we assert the qualitative findings that make
    // the paper's argument, at small scale:
    let study = study(400, 2021);
    let h = &study.hierarchy;

    // 1. Mixed resources exist at every granularity.
    for level in &h.levels {
        assert!(
            level.resource_counts.mixed > 0,
            "{:?} has no mixed resources",
            level.granularity
        );
    }
    // 2. Mixed domains carry a disproportionate share of requests
    //    (they are the big platforms/CDNs).
    let domains = h.level(Granularity::Domain);
    assert!(domains.request_counts.mixed_share() > domains.resource_counts.mixed_share());
    // 3. The hierarchy attributes the vast majority of requests by the
    //    method level (the paper reports 98%).
    assert!(
        h.overall_attribution() > 90.0,
        "only {:.1}% of requests attributed",
        h.overall_attribution()
    );
    // 4. Each finer level strictly improves cumulative separation.
    let cumulative = h.cumulative_separation();
    for window in cumulative.windows(2) {
        assert!(window[1].1 > window[0].1, "{cumulative:?}");
    }
}

#[test]
fn figure3_histograms_are_three_peaked_at_domain_level() {
    let study = study(400, 2021);
    let histogram = RatioHistogram::paper_bins(study.hierarchy.level(Granularity::Domain));
    // Pure tracking / functional masses (the ±∞ peaks) and the mixed middle
    // must all be populated.
    assert!(histogram.tracking_mass(2.0) > 0);
    assert!(histogram.functional_mass(2.0) > 0);
    assert!(histogram.mixed_mass(2.0) > 0);
    assert_eq!(
        histogram.total(),
        study
            .hierarchy
            .level(Granularity::Domain)
            .resource_counts
            .total()
    );
}

#[test]
fn blocking_mixed_scripts_causes_breakage_but_blocking_tracking_scripts_does_not() {
    let study = study(250, 17);
    // Mixed scripts: breakage expected on a majority of sampled sites.
    let mixed_breakage = study.breakage_study(8);
    assert!(!mixed_breakage.rows.is_empty());
    assert!(mixed_breakage.any_breakage_share() >= 50.0);

    // Blocking *pure tracking* scripts (what filter lists safely do today)
    // on the same corpus: load a few sites with their tracking-classified
    // scripts blocked and verify no core feature breaks.
    let tracking_scripts: std::collections::HashSet<&str> = study
        .hierarchy
        .level(Granularity::Script)
        .resources
        .iter()
        .filter(|r| r.classification == Classification::Tracking)
        .map(|r| r.key.as_str())
        .collect();
    let mut checked = 0;
    for site in study.corpus.websites.iter().take(50) {
        let blocked: Vec<String> = site
            .scripts
            .iter()
            .map(|s| s.origin.url().to_string())
            .filter(|u| tracking_scripts.contains(u.as_str()))
            .collect();
        if blocked.is_empty() {
            continue;
        }
        checked += 1;
        let row = trackersift::breakage::grade_site(site, &blocked);
        assert_ne!(
            row.breakage,
            Breakage::Major,
            "blocking pure tracking scripts should not break core functionality on {}",
            site.domain
        );
    }
    assert!(checked > 5, "too few sites had tracking-classified scripts");
}

#[test]
fn surrogates_cover_every_mixed_script_and_suppress_tracking() {
    let study = study(200, 3);
    let mixed_scripts: Vec<&str> = study
        .hierarchy
        .level(Granularity::Script)
        .resources
        .iter()
        .filter(|r| r.classification == Classification::Mixed)
        .map(|r| r.key.as_str())
        .collect();
    let surrogates = study.surrogates();
    assert_eq!(surrogates.len(), mixed_scripts.len());
    for surrogate in &surrogates {
        assert!(mixed_scripts.contains(&surrogate.script_url.as_str()));
        assert!(!surrogate.methods.is_empty());
        // A surrogate must never throw away functional requests silently:
        // every functional request of the script is preserved or guarded.
        assert!(
            surrogate.preserved_functional_requests > 0
                || surrogate.kept() + surrogate.guarded() == 0
        );
    }
}

#[test]
fn callstack_analysis_only_sees_the_mixed_method_residue() {
    let study = study(300, 29);
    let analysis = study.callstack_analysis();
    assert_eq!(
        analysis.mixed_methods() as u64,
        study
            .hierarchy
            .level(Granularity::Method)
            .resource_counts
            .mixed
    );
}

#[test]
fn sensitivity_sweep_plateaus_near_the_default_threshold() {
    let study = study(400, 2021);
    let sweep = study.sensitivity_sweep();
    // Around the default threshold the script-level mixed share must change
    // slowly (the paper's justification for choosing 2).
    let near_default = sweep.max_step_change(Granularity::Script, 1.8, 2.2);
    assert!(
        near_default < 10.0,
        "mixed share jumps {near_default:.1} points around the default threshold"
    );
}

#[test]
fn label_oracle_and_crawler_exclusions_match_paper_method() {
    let study = study(80, 41);
    // Non-script-initiated requests were captured by the crawler but
    // excluded from labeling.
    assert!(study.label_stats.excluded_non_script > 0);
    assert_eq!(
        study.label_stats.labeled(),
        study.requests.len(),
        "every kept request is labeled exactly once"
    );
    // The filter engine contains both curated and ecosystem rules.
    assert!(study.engine.rule_count() > 300);
}
