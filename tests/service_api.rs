//! Integration tests of the serving API: verdict semantics at study scale,
//! the allocation-free hot-path guarantee, snapshot round-trips, and the
//! observe/commit ≡ from-scratch equivalence on real pipeline output.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use trackersift_suite::prelude::*;

// ---------------------------------------------------------------------------
// A counting allocator so the "allocation-free verdict" claim is a test,
// not a comment. The counter is thread-local, so concurrently running
// tests on other threads cannot perturb a measurement.
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump, which itself never allocates (const-initialised
// TLS).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(|c| c.get());
    let result = f();
    let after = ALLOCATIONS.with(|c| c.get());
    (after - before, result)
}

// ---------------------------------------------------------------------------
// fixtures
// ---------------------------------------------------------------------------

fn study(sites: usize, seed: u64) -> Study {
    Study::run(StudyConfig {
        profile: CorpusProfile::small().with_sites(sites),
        seed,
        ..StudyConfig::default()
    })
}

// ---------------------------------------------------------------------------
// serving semantics at study scale
// ---------------------------------------------------------------------------

#[test]
fn sifter_equals_from_scratch_classification_on_pipeline_output() {
    let study = study(120, 7);
    let sifter = study.sifter();
    assert_eq!(sifter.hierarchy(), study.hierarchy);

    // Splitting the same requests into arbitrary observe/commit batches
    // must converge to the identical committed state.
    let mut incremental = Sifter::builder()
        .thresholds(study.config.thresholds)
        .build();
    for chunk in study.requests.chunks(997) {
        incremental.observe_all(chunk);
        incremental.commit();
    }
    assert_eq!(incremental.hierarchy(), study.hierarchy);
}

#[test]
fn every_trained_request_gets_a_consistent_verdict() {
    let study = study(100, 21);
    let sifter = study.sifter();
    let hierarchy = &study.hierarchy;

    // Independently derive each request's expected classification by
    // following the hierarchy result level by level.
    for request in &study.requests {
        let verdict = sifter.verdict(&VerdictRequest::from_labeled(request));
        let classification = verdict.classification().expect("trained request");
        let granularity = verdict.granularity().expect("trained request");

        // The decided level must contain the request's key at that level,
        // with exactly this classification.
        let level = hierarchy.level(granularity);
        let key = match granularity {
            Granularity::Domain => request.domain.clone(),
            Granularity::Hostname => request.hostname.clone(),
            Granularity::Script => request.initiator_script.clone(),
            Granularity::Method => trackersift::ResourceKey::method_label(
                &request.initiator_script,
                &request.initiator_method,
            ),
        };
        let entry = level
            .resources
            .iter()
            .find(|r| r.key == key)
            .unwrap_or_else(|| panic!("{key} missing from {granularity} level"));
        assert_eq!(entry.classification, classification, "{key}");
        // Every coarser level must have classified the request mixed
        // (otherwise the walk would have stopped there).
        for coarser in Granularity::ALL.iter().take_while(|g| **g != granularity) {
            let coarse_key = match coarser {
                Granularity::Domain => request.domain.as_str(),
                Granularity::Hostname => request.hostname.as_str(),
                Granularity::Script => request.initiator_script.as_str(),
                Granularity::Method => unreachable!("method is the finest level"),
            };
            let coarse = hierarchy
                .level(*coarser)
                .resources
                .iter()
                .find(|r| r.key == coarse_key)
                .unwrap_or_else(|| panic!("{coarse_key} missing from {coarser} level"));
            assert_eq!(coarse.classification, Classification::Mixed);
        }
    }
}

#[test]
fn verdict_batch_is_order_preserving_at_scale() {
    let study = study(80, 3);
    let sifter = study.sifter();
    let queries: Vec<VerdictRequest<'_>> = study
        .requests
        .iter()
        .map(VerdictRequest::from_labeled)
        .collect();
    let batch = sifter.verdict_batch(&queries);
    for (query, verdict) in queries.iter().zip(&batch) {
        assert_eq!(sifter.verdict(query), *verdict);
    }
}

// ---------------------------------------------------------------------------
// the allocation-free hot path
// ---------------------------------------------------------------------------

#[test]
fn verdicts_for_interned_keys_do_not_allocate() {
    let study = study(60, 11);
    let sifter = study.sifter();
    let queries: Vec<VerdictRequest<'_>> = study
        .requests
        .iter()
        .map(VerdictRequest::from_labeled)
        .collect();
    assert!(!queries.is_empty());

    // Warm pass (nothing should allocate even cold, but keep the
    // measurement honest about e.g. lazily-grown TLS).
    let mut blocked = 0usize;
    for query in &queries {
        blocked += usize::from(sifter.verdict(query).should_block());
    }

    let (allocations, served) = allocations_during(|| {
        let mut decided = 0usize;
        for _ in 0..3 {
            for query in &queries {
                decided += usize::from(sifter.verdict(query).classification().is_some());
            }
        }
        decided
    });
    assert_eq!(served, queries.len() * 3, "every query must be decided");
    assert_eq!(
        allocations, 0,
        "Sifter::verdict allocated on already-interned keys ({blocked} blocked in warmup)"
    );

    // The batched entry point reuses a caller buffer: allocation-free once
    // the buffer has grown to the batch size.
    let mut buffer = Vec::new();
    sifter.verdict_batch_into(&queries, &mut buffer);
    let (allocations, _) = allocations_during(|| {
        for _ in 0..3 {
            sifter.verdict_batch_into(&queries, &mut buffer);
        }
    });
    assert_eq!(allocations, 0, "verdict_batch_into must reuse the buffer");

    // Unknown keys are also allocation-free (miss on the interner).
    let miss = VerdictRequest::new("never.example", "x.never.example", "s.js", "m");
    let (allocations, verdict) = allocations_during(|| sifter.verdict(&miss));
    assert_eq!(verdict, Verdict::Unknown);
    assert_eq!(allocations, 0, "unknown-key verdicts must not allocate");
}

// ---------------------------------------------------------------------------
// snapshot round-trips
// ---------------------------------------------------------------------------

#[test]
fn snapshot_round_trip_preserves_bytes_and_verdicts() {
    let base = study(90, 5);
    let sifter = base.sifter();

    // Export → parse → re-export: byte-identical JSON.
    let snapshot = sifter.snapshot();
    let text = snapshot.to_json_string();
    let parsed = SifterSnapshot::parse(&text).expect("own snapshot parses");
    assert_eq!(parsed, snapshot);
    assert_eq!(parsed.to_json_string(), text);

    // Restore → identical committed state, verdicts, and re-export bytes.
    let restored = Sifter::builder().restore(&parsed).expect("restore");
    assert_eq!(restored.observed(), sifter.observed());
    assert_eq!(restored.hierarchy(), sifter.hierarchy());
    assert_eq!(restored.snapshot().to_json_string(), text);
    assert_eq!(
        format!("{:?}", restored.hierarchy()).into_bytes(),
        format!("{:?}", sifter.hierarchy()).into_bytes(),
        "restored hierarchy must render to identical bytes"
    );
    for request in &base.requests {
        let query = VerdictRequest::from_labeled(request);
        assert_eq!(restored.verdict(&query), sifter.verdict(&query));
    }

    // And the restored sifter keeps ingesting: train it further and check
    // it still matches a from-scratch sifter over the combined stream.
    let extra = study(30, 99);
    let mut grown = Sifter::builder().restore(&parsed).expect("restore");
    grown.observe_all(&extra.requests);
    grown.commit();
    let mut scratch = Sifter::builder().thresholds(base.config.thresholds).build();
    scratch.observe_all(base.requests.iter().chain(&extra.requests));
    scratch.commit();
    assert_eq!(grown.hierarchy(), scratch.hierarchy());
}

#[test]
fn snapshot_versioning_rejects_foreign_documents() {
    let study = study(20, 2);
    let text = study.sifter().snapshot().to_json_string();

    let future = text.replace("\"version\":1", "\"version\":2");
    assert!(matches!(
        SifterSnapshot::parse(&future),
        Err(SnapshotError::UnsupportedVersion {
            found: 2,
            supported: 1
        })
    ));

    let alien = text.replace("trackersift.sifter", "someone.elses.format");
    assert!(matches!(
        SifterSnapshot::parse(&alien),
        Err(SnapshotError::UnknownFormat(_))
    ));

    // Tampered totals are caught at parse (import) time with a typed
    // error — they never reach restore.
    let snapshot = study.sifter().snapshot();
    let observed = snapshot.observations();
    let tampered = text.replace(
        &format!("\"observed\":{observed}"),
        &format!("\"observed\":{}", observed + 1),
    );
    assert!(matches!(
        SifterSnapshot::parse(&tampered),
        Err(SnapshotError::Corrupt(message)) if message.contains("cells sum")
    ));
}
