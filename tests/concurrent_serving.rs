//! Integration tests of the concurrent serving split: atomic publication
//! under real thread contention, and reader/single-threaded equivalence.
//!
//! The load-bearing properties:
//!
//! * **Atomic publication, no torn reads** — a reader pins one table per
//!   batch, and every served verdict must equal the sequential sifter's
//!   verdict *at the pinned table's version*: never a mix of pre- and
//!   post-commit state, never a state that no commit produced.
//! * **Reader ≡ Sifter** — after every commit, a `SifterReader` answers
//!   byte-identically to a single-threaded `Sifter` fed the same stream.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;
use trackersift::{LabeledFrame, LabeledRequest};
use trackersift_suite::prelude::*;

/// A synthetic labeled request drawn from small key pools (mirrors the
/// generator in `property_based.rs`), so streams collide enough to produce
/// tracking, functional, and mixed resources at every granularity.
fn observation(
    domain: usize,
    host: usize,
    script: usize,
    method: usize,
    tracking: bool,
) -> LabeledRequest {
    let hostname = format!("h{host}.d{domain}.com");
    let script = format!("https://pub.com/s{script}.js");
    let method = format!("m{method}");
    LabeledRequest {
        request_id: 0,
        top_level_url: "https://www.pub.com/".into(),
        site_domain: "pub.com".into(),
        url: format!("https://{hostname}/x"),
        domain: format!("d{domain}.com"),
        hostname,
        resource_type: ResourceType::Xhr,
        initiator_script: script.clone(),
        initiator_method: method.clone(),
        stack: vec![LabeledFrame {
            script_url: script,
            method,
        }],
        async_boundary: None,
        label: if tracking {
            RequestLabel::Tracking
        } else {
            RequestLabel::Functional
        },
    }
}

/// Deterministic observation batches from a splitmix-style stream.
fn batches(count: usize, per_batch: usize, mut seed: u64) -> Vec<Vec<LabeledRequest>> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    let r = next();
                    observation(
                        (r % 5) as usize,
                        ((r >> 8) % 3) as usize,
                        ((r >> 16) % 5) as usize,
                        ((r >> 24) % 4) as usize,
                        (r >> 32) & 1 == 1,
                    )
                })
                .collect()
        })
        .collect()
}

/// Every distinct attribution tuple the pools can produce — the probe set
/// the stress test serves on every iteration.
fn probe_pool() -> Vec<LabeledRequest> {
    let mut probes = Vec::new();
    for domain in 0..5 {
        for host in 0..3 {
            for script in 0..5 {
                for method in 0..4 {
                    probes.push(observation(domain, host, script, method, false));
                }
            }
        }
    }
    probes
}

/// N reader threads serve the full probe set in a loop while the writer
/// interleaves observe+commit. Every batch of served verdicts must equal
/// the sequential classification at exactly the version the batch pinned
/// (atomic publication: pre- or post-commit state, never a torn mix), and
/// the versions each thread observes must be monotone.
#[test]
fn stress_readers_only_observe_whole_commits() {
    const READERS: usize = 4;
    let thresholds = Thresholds::new(1.0);
    let stream = batches(30, 40, 2021);
    let probes = probe_pool();

    // Sequential mirror: the expected probe verdicts after each commit.
    let mut mirror = Sifter::builder().thresholds(thresholds).build();
    let mut expected: Vec<Vec<Verdict>> = Vec::with_capacity(stream.len() + 1);
    let probe_queries: Vec<VerdictRequest<'_>> =
        probes.iter().map(VerdictRequest::from_labeled).collect();
    expected.push(mirror.verdict_batch(&probe_queries));
    for batch in &stream {
        mirror.observe_all(batch);
        mirror.commit();
        expected.push(mirror.verdict_batch(&probe_queries));
    }

    // Concurrent run over the identical stream.
    let (mut writer, reader) = Sifter::builder().thresholds(thresholds).build_concurrent();
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..READERS {
            let reader = reader.clone();
            let stop = &stop;
            let probes = &probes;
            let expected = &expected;
            workers.push(scope.spawn(move || {
                let mut served_batches = 0usize;
                let mut last_version = 0u64;
                let queries: Vec<VerdictRequest<'_>> =
                    probes.iter().map(VerdictRequest::from_labeled).collect();
                let mut verdicts = Vec::new();
                loop {
                    // Acquire pairs with the writer's Release store below,
                    // so `done == true` happens-after the final publish and
                    // the last sweep is guaranteed to pin the final table.
                    let done = stop.load(Ordering::Acquire);
                    // One pin covers the whole probe sweep, so the sweep
                    // must match one committed state exactly.
                    let pin = reader.pin();
                    let version = pin.version();
                    assert!(
                        version >= last_version,
                        "published versions must be monotone per reader"
                    );
                    last_version = version;
                    verdicts.clear();
                    for query in &queries {
                        verdicts.push(pin.verdict(query));
                    }
                    drop(pin);
                    assert_eq!(
                        &verdicts, &expected[version as usize],
                        "verdicts served at version {version} do not match the \
                         sequential classification at that version"
                    );
                    served_batches += 1;
                    if done {
                        return (served_batches, last_version);
                    }
                    thread::yield_now();
                }
            }));
        }

        for batch in &stream {
            writer.observe_all(batch);
            writer.commit();
            // Give the (possibly single-core) scheduler a chance to run
            // readers between commits so versions actually interleave.
            thread::sleep(Duration::from_micros(500));
        }
        stop.store(true, Ordering::Release);

        for worker in workers {
            let (served_batches, last_version) = worker.join().expect("reader thread panicked");
            assert!(served_batches > 0, "every reader must have served");
            // The final sweep ran with the stop flag set, after the last
            // commit was published.
            assert_eq!(last_version, stream.len() as u64);
        }
    });

    // And the writer's final state equals the sequential mirror's.
    assert_eq!(writer.sifter().hierarchy(), mirror.hierarchy());
}

/// Same shape as the verdict stress test, but for the enforcement layer:
/// reader threads serve whole *decision* sweeps (surrogate payloads
/// included) from one pin while the writer interleaves observe+commit.
/// Every sweep must equal the sequential `Sifter::decide` output at
/// exactly the pinned table's version — a decision served during a
/// `commit()` always reflects one committed table, never a torn mix and
/// never a state no commit produced.
#[test]
fn stress_decisions_match_one_committed_version() {
    const READERS: usize = 3;
    let thresholds = Thresholds::new(1.0);
    let stream = batches(20, 40, 4242);
    let probes = probe_pool();

    // Sequential mirror: expected decisions after each commit.
    let mut mirror = Sifter::builder().thresholds(thresholds).build();
    let probe_queries: Vec<DecisionRequest<'_>> = probes
        .iter()
        .map(|probe| {
            DecisionRequest::new(
                &probe.domain,
                &probe.hostname,
                &probe.initiator_script,
                &probe.initiator_method,
            )
        })
        .collect();
    let mut expected: Vec<Vec<Decision>> = Vec::with_capacity(stream.len() + 1);
    expected.push(mirror.decide_batch(&probe_queries));
    for batch in &stream {
        mirror.observe_all(batch);
        mirror.commit();
        expected.push(mirror.decide_batch(&probe_queries));
    }
    // The pools are small and collide hard, so surrogates must actually
    // appear somewhere in the schedule for this test to mean anything.
    assert!(
        expected
            .iter()
            .flatten()
            .any(|decision| matches!(decision, Decision::Surrogate(_))),
        "stress schedule never produced a surrogate decision"
    );

    let (mut writer, reader) = Sifter::builder().thresholds(thresholds).build_concurrent();
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..READERS {
            let reader = reader.clone();
            let stop = &stop;
            let probes = &probes;
            let expected = &expected;
            workers.push(scope.spawn(move || {
                let queries: Vec<DecisionRequest<'_>> = probes
                    .iter()
                    .map(|probe| {
                        DecisionRequest::new(
                            &probe.domain,
                            &probe.hostname,
                            &probe.initiator_script,
                            &probe.initiator_method,
                        )
                    })
                    .collect();
                let mut sweeps = 0usize;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    // One pin covers the whole decision sweep.
                    let pin = reader.pin();
                    let version = pin.version();
                    let decisions: Vec<Decision> =
                        queries.iter().map(|query| pin.decide(query)).collect();
                    drop(pin);
                    assert_eq!(
                        &decisions, &expected[version as usize],
                        "decisions served at version {version} do not match the \
                         sequential enforcement at that version"
                    );
                    sweeps += 1;
                    if done {
                        return sweeps;
                    }
                    thread::yield_now();
                }
            }));
        }

        for batch in &stream {
            writer.observe_all(batch);
            writer.commit();
            thread::sleep(Duration::from_micros(500));
        }
        stop.store(true, Ordering::Release);
        for worker in workers {
            assert!(worker.join().expect("decision reader panicked") > 0);
        }
    });
    assert_eq!(writer.sifter().hierarchy(), mirror.hierarchy());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every commit, `SifterReader` verdicts are byte-identical to a
    /// single-threaded `Sifter` fed the same observe/commit schedule.
    #[test]
    fn reader_verdicts_are_byte_identical_to_the_sifter(
        picks in prop::collection::vec((0usize..5, 0usize..3, 0usize..5, 0usize..4, 0u64..2), 1..120),
        commit_every in 1usize..10,
        threshold in 0.5f64..3.0,
    ) {
        let thresholds = Thresholds::new(threshold);
        let observations: Vec<LabeledRequest> = picks
            .iter()
            .map(|&(d, h, s, m, label)| observation(d, h, s, m, label == 1))
            .collect();
        let queries: Vec<VerdictRequest<'_>> =
            observations.iter().map(VerdictRequest::from_labeled).collect();

        let mut sifter = Sifter::builder().thresholds(thresholds).build();
        let (mut writer, reader) = Sifter::builder().thresholds(thresholds).build_concurrent();
        for (i, request) in observations.iter().enumerate() {
            sifter.observe(request);
            writer.observe(request);
            if (i + 1) % commit_every == 0 || i + 1 == observations.len() {
                let sequential_stats = sifter.commit();
                let concurrent_stats = writer.commit();
                prop_assert_eq!(sequential_stats, concurrent_stats);
                let sequential = sifter.verdict_batch(&queries);
                let concurrent = reader.verdict_batch(&queries);
                prop_assert_eq!(
                    format!("{sequential:?}").into_bytes(),
                    format!("{concurrent:?}").into_bytes(),
                    "reader and sifter verdicts must render to identical bytes"
                );
                prop_assert_eq!(reader.version(), sifter.commits());
                prop_assert_eq!(reader.committed(), sifter.committed());
            }
        }
        prop_assert_eq!(writer.sifter().hierarchy(), sifter.hierarchy());
    }
}
