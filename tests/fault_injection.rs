//! The deterministic fault-injection harness for crash-only serving.
//!
//! Two tiers share this file:
//!
//! * **Always-on** tests that need no special build: the byte-level
//!   torn-tail property (a journal truncated at *every* byte offset
//!   replays to a clean prefix of the original entries) and a real
//!   `SIGKILL` crash test that murders a committing writer process and
//!   proves every fsynced commit survives the reboot.
//! * **`--features failpoints`** tests that thread injected faults
//!   (I/O errors, short writes, byte-budget cuts, panics) through the
//!   journal, snapshot, poller, and worker code paths via
//!   `trackersift::failpoint`.
//!
//! The failpoint registry is process-global, so every test here
//! serialises on one lock rather than racing other tests' injected
//! faults.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use trackersift::{Journal, JournalEntry, Sifter};

/// Serialises the tests in this file: injected faults are process-global,
/// and the prefix/SIGKILL tests write real journals that a concurrently
/// injected cut would corrupt.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!(
        "trackersift-chaos-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------------
// Torn-tail property: replaying any byte prefix of a journal yields a clean
// prefix of the appended entries — never an error, never a phantom record.
// ---------------------------------------------------------------------------

fn arb_entry() -> impl Strategy<Value = JournalEntry> {
    prop_oneof![
        (
            "[a-z]{1,8}\\.com",
            "[a-z]{1,8}",
            "[a-z]{1,12}",
            "[a-z]{1,6}",
            0u8..2,
        )
            .prop_map(|(domain, host, script, method, tracking)| {
                JournalEntry::Parts {
                    domain,
                    hostname: host,
                    script,
                    method,
                    tracking: tracking == 1,
                }
            }),
        (
            "[a-z]{1,10}",
            "[a-z]{1,8}\\.com",
            "[a-z]{1,12}",
            "[a-z]{1,6}"
        )
            .prop_map(|(path, source, script, method)| JournalEntry::Url {
                url: format!("https://t.example/{path}"),
                source_hostname: source,
                resource_type: filterlist::ResourceType::Script,
                script,
                method,
            }),
        (0u64..10_000).prop_map(|version| JournalEntry::Commit { version }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_byte_prefix_replays_to_a_clean_prefix(
        entries in prop::collection::vec(arb_entry(), 1..12)
    ) {
        let _guard = chaos_lock();
        let dir = temp_dir("prefix");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("journal.wal");
        {
            // Written through the real encoder so the bytes under test are
            // the production frame format, not a test reimplementation.
            let mut journal = Journal::open(&path, 1).expect("open journal");
            for entry in &entries {
                journal.append(entry).expect("append");
            }
            journal.sync().expect("sync");
        }
        let bytes = fs::read(&path).expect("read journal bytes");
        let (full, full_report) = Journal::replay_bytes(&bytes);
        prop_assert_eq!(&full, &entries);
        prop_assert_eq!(full_report.torn_bytes, 0);
        prop_assert_eq!(full_report.valid_bytes, bytes.len() as u64);

        let mut decoded_so_far = 0usize;
        for len in 0..=bytes.len() {
            let (prefix, report) = Journal::replay_bytes(&bytes[..len]);
            // Monotone in the prefix length, bounded by the full set, and
            // always byte-for-byte the entries that were appended.
            prop_assert!(prefix.len() >= decoded_so_far);
            prop_assert!(prefix.len() <= entries.len());
            prop_assert_eq!(prefix.as_slice(), &entries[..prefix.len()]);
            prop_assert_eq!(report.valid_bytes + report.torn_bytes, len as u64);
            decoded_so_far = prefix.len();
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// SIGKILL mid-commit: a real child process trains through a durable writer,
// advertises each completed (fsynced) commit, and is then killed without
// warning. The reboot must recover at least everything advertised.
// ---------------------------------------------------------------------------

/// Observations per commit round in the SIGKILL child.
const SIGKILL_BATCH: u64 = 8;

/// The child half of the SIGKILL test: an infinite observe/commit loop that
/// only runs when re-executed by the parent with `CHAOS_SIGKILL_DIR` set
/// (a no-op pass in a normal test run).
#[test]
fn sigkill_child_writer() {
    let Ok(dir) = std::env::var("CHAOS_SIGKILL_DIR") else {
        return;
    };
    let (mut writer, _reader) = Sifter::builder().build_concurrent();
    // A huge batch threshold: nothing is synced except by commit markers,
    // so the recovery guarantee under test is exactly the commit fsync.
    writer
        .open_durable(&dir, u64::MAX)
        .expect("child opens durable dir");
    let progress_path = PathBuf::from(&dir).join("progress");
    let mut committed = 0u64;
    loop {
        for i in 0..SIGKILL_BATCH {
            let script = format!("https://pub.com/gen-{committed}-{i}.js");
            writer.observe_parts("ads.com", "px.ads.com", &script, "send", true);
        }
        writer.commit();
        committed += 1;
        // Advertised only after commit() returned, i.e. after the commit
        // marker's fsync completed — the exact durability promise.
        fs::write(&progress_path, committed.to_string()).expect("write progress");
    }
}

#[test]
fn sigkill_mid_commit_preserves_every_advertised_commit() {
    let _guard = chaos_lock();
    let dir = temp_dir("sigkill");
    fs::create_dir_all(&dir).expect("mkdir");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["sigkill_child_writer", "--exact", "--test-threads=1"])
        .env("CHAOS_SIGKILL_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer");

    // Let it get a few commits out, then pull the plug mid-flight.
    let progress_path = dir.join("progress");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let advertised = fs::read_to_string(&progress_path)
            .ok()
            .and_then(|text| text.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if advertised >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child writer never reached 3 commits"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the child writer");
    let _ = child.wait();

    let advertised: u64 = fs::read_to_string(&progress_path)
        .expect("progress file")
        .trim()
        .parse()
        .expect("progress is a number");

    // Reboot on the same directory: every advertised commit (and all of
    // its observations) must be there; a torn tail past the last fsync is
    // legal and silently discarded.
    let (mut writer, reader) = Sifter::builder().build_concurrent();
    let report = writer
        .open_durable(&dir, 64)
        .expect("recover after SIGKILL");
    assert!(
        report.replayed_commits >= advertised,
        "recovered {} commits, child advertised {advertised}",
        report.replayed_commits
    );
    assert!(
        writer.sifter().observed() >= advertised * SIGKILL_BATCH,
        "recovered {} observations, child advertised {}",
        writer.sifter().observed(),
        advertised * SIGKILL_BATCH
    );
    // The recovered state serves: the domain the child trained is blocked.
    let pin = reader.pin();
    let request = trackersift::DecisionRequest::new(
        "ads.com",
        "px.ads.com",
        "https://pub.com/gen-0-0.js",
        "send",
    );
    assert!(matches!(
        pin.table().decide(&request),
        trackersift::Decision::Block(_)
    ));
    drop(pin);
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Injected faults (cfg-gated: `cargo test --features failpoints`).
// ---------------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use std::io::ErrorKind;
    use trackersift::failpoint::{self, Action};
    use trackersift_server::client::Client;
    use trackersift_server::{ServerConfig, VerdictServer};

    fn serving_config() -> ServerConfig {
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::ephemeral()
        }
    }

    fn trained_writer() -> trackersift::SifterWriter {
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        for _ in 0..5 {
            writer.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
        }
        writer.commit();
        writer
    }

    #[test]
    fn torn_journal_tail_recovers_to_the_last_synced_commit() {
        let _guard = chaos_lock();
        failpoint::clear_all();
        let dir = temp_dir("torn");
        fs::create_dir_all(&dir).expect("mkdir");
        {
            let (mut writer, _reader) = Sifter::builder().build_concurrent();
            writer.open_durable(&dir, 1).expect("open durable");
            for _ in 0..5 {
                writer.observe_parts(
                    "ads.com",
                    "px.ads.com",
                    "https://pub.com/a.js",
                    "send",
                    true,
                );
            }
            writer.commit();
            // Cut the write path after 7 more bytes: mid-frame, exactly as
            // a power cut would land. Everything after the budget silently
            // vanishes, like writes of a process that is already dead.
            failpoint::set("journal.cut", Action::cut_after(7));
            for _ in 0..5 {
                writer.observe_parts(
                    "cdn.com",
                    "a.cdn.com",
                    "https://pub.com/ui.js",
                    "load",
                    false,
                );
            }
            writer.commit();
            failpoint::clear_all();
        }
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        let report = writer.open_durable(&dir, 1).expect("recover torn journal");
        assert!(report.torn_bytes > 0, "the cut left a torn tail");
        assert_eq!(report.replayed_commits, 1, "only the synced commit");
        assert_eq!(
            report.replayed_records, 7,
            "5 observations + 1 marker + 1 revision"
        );
        assert_eq!(writer.sifter().observed(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_degrades_durability_but_not_serving() {
        let _guard = chaos_lock();
        failpoint::clear_all();
        let dir = temp_dir("fsync");
        fs::create_dir_all(&dir).expect("mkdir");
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        writer.open_durable(&dir, 1).expect("open durable");
        failpoint::set("journal.sync", Action::io_error(ErrorKind::Other, Some(2)));
        writer.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        writer.commit();
        failpoint::clear_all();
        // Serving continued right through the failed fsync…
        assert_eq!(writer.published_version(), 1);
        assert_eq!(reader.version(), 1);
        // …and the degradation is counted, not swallowed.
        let stats = writer.journal_stats().expect("durable writer has stats");
        assert!(stats.sync_errors >= 1, "sync failures surface in stats");
        // With the fault gone, durability recovers on the next sync.
        writer.sync_journal().expect("a later sync succeeds");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_poll_failures_never_wedge_the_event_loop() {
        let _guard = chaos_lock();
        failpoint::clear_all();
        let server =
            VerdictServer::start(trained_writer(), serving_config()).expect("start server");
        // An EINTR-storm-alike: the next three poll(2) calls fail outright.
        failpoint::set("poller.wait", Action::io_error(ErrorKind::Other, Some(3)));
        let mut client = Client::connect(server.local_addr());
        let (status, _) = client.request("GET", "/healthz", None);
        assert_eq!(status, 200, "the worker napped through the fault storm");
        failpoint::clear_all();
        server.shutdown();
    }

    #[test]
    fn panicking_request_respawns_the_worker_and_keeps_serving() {
        let _guard = chaos_lock();
        failpoint::clear_all();
        let server =
            VerdictServer::start(trained_writer(), serving_config()).expect("start server");
        failpoint::set("worker.request", Action::panic(Some(1)));
        // The poisoned request costs exactly its own connection: the
        // worker unwinds, the socket closes with no response.
        let mut victim = Client::connect(server.local_addr());
        let poisoned = victim.send_raw(b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        assert!(poisoned.is_none(), "the panicking request gets no response");

        // The pool self-heals: a fresh connection is served normally…
        let mut client = Client::connect(server.local_addr());
        let (status, _) = client.request("GET", "/healthz", None);
        assert_eq!(status, 200);
        // …and the respawn is visible in the stats.
        let (status, body) = client.request("GET", "/v1/stats", None);
        assert_eq!(status, 200);
        let stats = crawler::json::Value::parse(&body).expect("stats json");
        let restarts = stats
            .field("admission")
            .and_then(|admission| admission.field("worker_restarts"))
            .and_then(|restarts| restarts.as_u64())
            .expect("admission.worker_restarts");
        assert_eq!(restarts, 1);
        failpoint::clear_all();
        server.shutdown();
    }

    #[test]
    fn failed_checkpoint_keeps_the_previous_generation_serving() {
        let _guard = chaos_lock();
        failpoint::clear_all();
        let dir = temp_dir("checkpoint-fail");
        fs::create_dir_all(&dir).expect("mkdir");
        {
            let (mut writer, _reader) = Sifter::builder().build_concurrent();
            writer.open_durable(&dir, 1).expect("open durable");
            writer.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
            writer.commit();
            assert_eq!(writer.checkpoint().expect("healthy checkpoint"), 1);
            writer.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/m.js",
                "track",
                true,
            );
            writer.commit();
            // The next snapshot write dies; the rotation must not happen.
            failpoint::set(
                "snapshot.write",
                Action::io_error(ErrorKind::Other, Some(1)),
            );
            assert!(writer.checkpoint().is_err());
            failpoint::clear_all();
            assert_eq!(writer.durable_generation(), Some(1), "generation unchanged");
        }
        // Reboot: generation 1's snapshot + journal still carry everything.
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        let report = writer.open_durable(&dir, 1).expect("recover");
        assert_eq!(report.generation, 1);
        assert!(report.restored_snapshot);
        assert_eq!(report.replayed_commits, 1, "the post-checkpoint commit");
        assert_eq!(writer.sifter().observed(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
