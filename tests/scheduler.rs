//! Integration tests of the continuous re-crawl loop: scheduler runs are
//! deterministic from their seed, the revision-diff algebra agrees with an
//! independent model, fingerprint keying survives the churn that orphans
//! URL keying, and the drift served over `GET /v1/revisions?diff=` is
//! byte-identical to the in-process fold.

use crawler::json::Value;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;
use trackersift::frames;
use trackersift::{compose, diff_revisions, ChangeKind, RevisionChange, VerdictRevision};
use trackersift_server::client::Client;
use trackersift_suite::prelude::*;

/// A scheduler over a churny ecosystem: 35% of tracker scripts rotate CDNs
/// per epoch (≥ the 30% scenario the acceptance criteria name), 30% re-draw
/// endpoint paths, 25% of sites grow a new pixel.
fn churny(keying: ScriptKeying, sites: usize, seed: u64) -> Scheduler {
    Scheduler::new(
        SchedulerConfig::new(seed)
            .with_sites(sites)
            .with_mutation(MutationConfig::churny())
            .with_keying(keying),
    )
}

// ---------------------------------------------------------------------------
// Determinism: the whole loop — corpus, mutations, crawl order, revision
// ring — replays byte-identically from the seed.
// ---------------------------------------------------------------------------

#[test]
fn same_seed_schedulers_produce_byte_identical_rings() {
    let run = || {
        let mut scheduler = churny(ScriptKeying::Fingerprint, 40, 97);
        let (mut writer, _reader) = scheduler.sifter_pair();
        let mut summaries = Vec::new();
        for _ in 0..10 {
            summaries.push(scheduler.tick(&mut writer));
        }
        let ring = frames::encode_revision_list(writer.published_version(), writer.revisions());
        (summaries, ring, scheduler.stats())
    };
    let (first_summaries, first_ring, first_stats) = run();
    let (second_summaries, second_ring, second_stats) = run();
    assert_eq!(first_summaries, second_summaries);
    assert_eq!(
        first_ring, second_ring,
        "revision rings must be byte-identical"
    );
    assert_eq!(first_stats, second_stats);
    // And the run was not trivial: the ecosystem drifted every epoch after
    // the seed crawl.
    assert!(first_stats.rotated_cdn_scripts > 0);
    assert!(first_stats.drift_events > first_summaries[0].drift_events);
}

// ---------------------------------------------------------------------------
// The diff algebra against an independent model: a ring built from random
// coherent transitions must satisfy diff(a,c) == compose(diff(a,b),
// diff(b,c)), and the direct diff must equal the plain state delta.
// ---------------------------------------------------------------------------

/// Classification state per (granularity index, key) — the independent
/// model the algebra is checked against.
type Model = BTreeMap<(usize, String), Classification>;

fn class_of(code: u8) -> Option<Classification> {
    match code % 4 {
        0 => None,
        1 => Some(Classification::Tracking),
        2 => Some(Classification::Functional),
        _ => Some(Classification::Mixed),
    }
}

/// The transitions between two model states, in the canonical
/// (granularity, key) order the core sorts by.
fn model_changes(before: &Model, after: &Model) -> Vec<RevisionChange> {
    let keys: BTreeSet<&(usize, String)> = before.keys().chain(after.keys()).collect();
    keys.into_iter()
        .filter_map(|key| {
            ChangeKind::of(before.get(key).copied(), after.get(key).copied())
                .map(|kind| RevisionChange::new(Granularity::ALL[key.0], key.1.as_str(), kind))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn diff_equals_composed_diffs_against_the_model(
        steps in prop::collection::vec(
            prop::collection::vec((0usize..4, 0usize..6, 0u8..4), 0..6),
            1..8,
        ),
        anchors in (0usize..8, 0usize..8, 0usize..8),
    ) {
        // Build a coherent ring and the model state after every version.
        let mut state = Model::new();
        let mut states = vec![state.clone()];
        let mut ring: Vec<Arc<VerdictRevision>> = Vec::new();
        for (index, step) in steps.iter().enumerate() {
            // Last write wins per key within one commit.
            let mut touched: BTreeMap<(usize, String), Option<Classification>> = BTreeMap::new();
            for &(granularity, key, code) in step {
                touched.insert((granularity, format!("key{key}")), class_of(code));
            }
            let mut changes = Vec::new();
            for (key, new) in touched {
                let old = state.get(&key).copied();
                let Some(kind) = ChangeKind::of(old, new) else {
                    continue;
                };
                changes.push(RevisionChange::new(
                    Granularity::ALL[key.0],
                    key.1.as_str(),
                    kind,
                ));
                match new {
                    Some(class) => state.insert(key, class),
                    None => state.remove(&key),
                };
            }
            ring.push(Arc::new(VerdictRevision::new(index as u64 + 1, changes)));
            states.push(state.clone());
        }

        // Three anchors a <= b <= c inside the ring's diffable span.
        let span = steps.len() + 1;
        let mut picks = [anchors.0 % span, anchors.1 % span, anchors.2 % span];
        picks.sort_unstable();
        let [a, b, c] = picks;

        let ab = diff_revisions(&ring, a as u64, b as u64).expect("diff a..b");
        let bc = diff_revisions(&ring, b as u64, c as u64).expect("diff b..c");
        let ac = diff_revisions(&ring, a as u64, c as u64).expect("diff a..c");

        // Associativity of the fold: the two legs compose into the direct
        // diff exactly, canonical order included.
        prop_assert_eq!(compose(&ab.changes, &bc.changes), ac.changes.clone());
        // And the direct diff is precisely the model's state delta.
        prop_assert_eq!(ac.changes, model_changes(&states[a], &states[c]));
    }
}

// ---------------------------------------------------------------------------
// The acceptance scenario: under a 10-epoch churny run, fingerprint-keyed
// verdicts survive CDN rotation while URL-keyed verdicts are orphaned.
// ---------------------------------------------------------------------------

#[test]
fn fingerprint_keying_survives_churn_where_url_keying_does_not() {
    let run = |keying: ScriptKeying| {
        let mut scheduler = churny(keying, 40, 2026);
        let (mut writer, _reader) = scheduler.sifter_pair();
        for _ in 0..10 {
            scheduler.tick(&mut writer);
        }
        scheduler.stats()
    };
    let fingerprint = run(ScriptKeying::Fingerprint);
    let url = run(ScriptKeying::Url);

    // Both runs mutate the same web: plenty of rotations and a real probe
    // denominator on each side.
    assert_eq!(fingerprint.rotated_cdn_scripts, url.rotated_cdn_scripts);
    assert!(
        fingerprint.rotated_cdn_scripts >= 30,
        "10 churny epochs must rotate a meaningful share of scripts, got {}",
        fingerprint.rotated_cdn_scripts
    );
    assert!(fingerprint.retention_probes >= 20, "{fingerprint:?}");
    assert!(url.retention_probes >= 20, "{url:?}");

    let rate = |stats: SchedulerStats| stats.retention_hits as f64 / stats.retention_probes as f64;
    let fingerprint_rate = rate(fingerprint);
    let url_rate = rate(url);
    assert!(
        fingerprint_rate >= 0.9,
        "fingerprint keying must retain >= 90%, got {fingerprint_rate:.3}"
    );
    assert!(
        url_rate <= 0.1,
        "URL keying must lose nearly everything, got {url_rate:.3}"
    );
}

// ---------------------------------------------------------------------------
// Drift over the wire: a server-attached scheduler run serves the exact
// revision ring and diffs an identically-seeded in-process run computes.
// ---------------------------------------------------------------------------

#[test]
fn wire_drift_diffs_are_byte_identical_to_in_process() {
    // The in-process twin.
    let mut twin = churny(ScriptKeying::Fingerprint, 25, 5);
    let (mut twin_writer, _twin_reader) = twin.sifter_pair();
    let mut twin_summaries = Vec::new();
    for _ in 0..3 {
        twin_summaries.push(twin.tick(&mut twin_writer));
    }

    // The same config attached to a server, ticked over the wire.
    let scheduler = churny(ScriptKeying::Fingerprint, 25, 5);
    let (writer, _reader) = scheduler.sifter_pair();
    let server = VerdictServer::start_with_scheduler(
        writer,
        ServerConfig {
            workers: 2,
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::ephemeral()
        },
        Box::new(scheduler),
    )
    .expect("start verdict server with scheduler");
    let mut client = Client::connect(server.local_addr());
    for summary in &twin_summaries {
        let (status, body) = client.request("POST", "/v1/tick", None);
        assert_eq!(status, 200, "{body}");
        let reply = Value::parse(&body).expect("tick reply is json");
        assert_eq!(
            reply.field("version").unwrap().as_u64().unwrap(),
            summary.version
        );
        assert_eq!(
            reply.field("drift_events").unwrap().as_u64().unwrap(),
            summary.drift_events
        );
    }

    // The full ring, byte-identical in JSON and binary.
    let (status, body) = client.request("GET", "/v1/revisions", None);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        frames::revision_list_value(twin_writer.published_version(), twin_writer.revisions())
            .render()
    );
    let (version, served_ring) = client.fetch_revisions_binary().expect("binary ring");
    assert_eq!(version, twin_writer.published_version());
    let served_ring: Vec<_> = served_ring.into_iter().map(Arc::new).collect();
    assert_eq!(
        frames::encode_revision_list(version, &served_ring),
        frames::encode_revision_list(twin_writer.published_version(), twin_writer.revisions())
    );

    // Every diffable span folds to the same bytes the in-process algebra
    // computes — the exact commit-level drift, not an approximation.
    for from in 0..=3u64 {
        for to in from..=3u64 {
            let expected = diff_revisions(twin_writer.revisions(), from, to).expect("local diff");
            let target = format!("/v1/revisions?diff={from}..{to}");
            let (status, body) = client.request("GET", &target, None);
            assert_eq!(status, 200, "{target}");
            assert_eq!(
                body,
                frames::revision_diff_value(&expected).render(),
                "{target}"
            );
            let diff = client
                .fetch_revision_diff_binary(from, to)
                .expect("binary diff");
            assert_eq!(diff, expected, "{target} (binary)");
        }
    }

    // The scheduler gauges surface in /v1/stats.
    let (status, body) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    let stats = Value::parse(&body).expect("stats json");
    let section = stats.field("scheduler").expect("scheduler section");
    assert_eq!(section.field("ticks").unwrap().as_u64().unwrap(), 3);
    assert_eq!(section.field("epoch").unwrap().as_u64().unwrap(), 2);
    server.shutdown();
}
