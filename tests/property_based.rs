//! Property-based tests (proptest) over the core data structures and
//! invariants: the filter pattern matcher, the ratio classifier, the
//! hierarchy's conservation laws, and the crawl database round-trip.

use proptest::prelude::*;
use trackersift_suite::prelude::*;

// ---------------------------------------------------------------------------
// filterlist: the token index must agree with the linear scan for any URL.
// ---------------------------------------------------------------------------

fn arb_url() -> impl Strategy<Value = String> {
    let host = prop::collection::vec("[a-z]{2,8}", 2..4).prop_map(|labels| labels.join("."));
    let path = prop::collection::vec("[a-z0-9]{1,8}", 0..4).prop_map(|segments| segments.join("/"));
    let query = prop::option::of("[a-z]{1,6}=[a-z0-9]{1,6}");
    (host, path, query).prop_map(|(host, path, query)| match query {
        Some(q) => format!("https://{host}/{path}?{q}"),
        None => format!("https://{host}/{path}"),
    })
}

/// Rule patterns that stress the hashed index's boundary analysis: plain
/// substrings (whose leading/trailing runs must not become index tokens),
/// separator-bounded paths, host anchors, and wildcards.
fn arb_rule() -> impl Strategy<Value = String> {
    prop_oneof![
        // Unanchored substring, unbounded on both sides (e.g. `adserver`).
        "[a-z]{3,10}",
        // Left-bounded path fragment (`/ads` — historically a false
        // negative of the string-bucket index).
        "/[a-z]{3,8}",
        // Fully bounded path (`/ads/`).
        "/[a-z]{3,8}/",
        // Query fragment with separator (`/collect\\?`).
        "/[a-z]{3,8}\\?",
        // Host anchor (`||ads.example^`).
        "\\|\\|[a-z]{3,8}\\.[a-z]{2,6}\\^",
        // Wildcard in the middle (`/ban*ner/`).
        "/[a-z]{2,4}\\*[a-z]{2,4}/",
        // End anchored (`.js|`-style).
        "[a-z]{2,5}\\.[a-z]{2,3}\\|",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn token_index_never_disagrees_with_linear_scan(url in arb_url(), source in "[a-z]{3,10}\\.com") {
        let engine = FilterEngine::easylist_easyprivacy();
        if let Some(request) = FilterRequest::new(&url, &source, ResourceType::Script) {
            prop_assert_eq!(
                engine.evaluate(&request).label(),
                engine.evaluate_linear(&request).label()
            );
        }
    }

    #[test]
    fn hashed_index_agrees_with_linear_scan_on_crafted_rules(
        rules in prop::collection::vec(arb_rule(), 1..12),
        urls in prop::collection::vec(arb_url(), 1..8),
        source in "[a-z]{3,10}\\.com",
    ) {
        let text = rules.join("\n");
        let engine = FilterEngine::from_lists(&[(filterlist::ListKind::EasyList, text.as_str())]);
        // Random URLs rarely collide with random rules, so also derive
        // adversarial URLs from each rule: one that embeds its literal text
        // exactly, one that extends the trailing run (`/ads` vs
        // `/adserver`), and one that uses it as a hostname.
        let mut probes = urls.clone();
        for rule in &rules {
            let frag: String = rule
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '/')
                .collect();
            let frag = frag.trim_matches('/');
            if frag.is_empty() {
                continue;
            }
            probes.push(format!("https://www.shop.com/{frag}?x=1"));
            probes.push(format!("https://www.shop.com/{frag}tail/img.png"));
            probes.push(format!("https://pre{frag}/asset.js"));
        }
        for url in &probes {
            if let Some(request) = FilterRequest::new(url, &source, ResourceType::Script) {
                prop_assert_eq!(
                    engine.evaluate(&request).label(),
                    engine.evaluate_linear(&request).label(),
                    "hashed index and linear scan disagree for rule set {:?} on {}",
                    rules,
                    url
                );
            }
        }
    }

    #[test]
    fn extended_engine_agrees_with_from_scratch_engine(
        base in prop::collection::vec(arb_rule(), 1..8),
        extra in prop::collection::vec(arb_rule(), 1..8),
        urls in prop::collection::vec(arb_url(), 1..8),
        source in "[a-z]{3,10}\\.com",
    ) {
        let base_text = base.join("\n");
        let extra_text = extra.join("\n");
        let mut extended =
            FilterEngine::from_lists(&[(filterlist::ListKind::EasyList, base_text.as_str())]);
        extended.extend_with_rules(
            filterlist::parse_list(&extra_text, filterlist::ListKind::Custom).rules,
        );
        let combined = format!("{base_text}\n{extra_text}");
        let scratch =
            FilterEngine::from_lists(&[(filterlist::ListKind::EasyList, combined.as_str())]);
        for url in &urls {
            if let Some(request) = FilterRequest::new(url, &source, ResourceType::Script) {
                prop_assert_eq!(extended.label(&request), scratch.label(&request));
                prop_assert_eq!(
                    extended.label(&request),
                    extended.evaluate_linear(&request).label()
                );
            }
        }
    }

    #[test]
    fn url_parsing_never_panics_and_lowercases_host(raw in "\\PC{0,60}") {
        if let Some(parsed) = filterlist::ParsedUrl::parse(&raw) {
            prop_assert_eq!(parsed.hostname.clone(), parsed.hostname.to_ascii_lowercase());
        }
    }

    #[test]
    fn registrable_domain_is_idempotent_and_suffix(host in "[a-z]{1,8}(\\.[a-z]{1,8}){0,4}") {
        let d1 = filterlist::registrable_domain(&host);
        let d2 = filterlist::registrable_domain(&d1);
        prop_assert_eq!(&d1, &d2);
        prop_assert!(host.ends_with(&d1) || d1 == host);
    }
}

// ---------------------------------------------------------------------------
// ratio: classification is symmetric and respects the threshold.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn classification_is_symmetric_under_label_swap(t in 0u64..10_000, f in 0u64..10_000, threshold in 0.5f64..4.0) {
        prop_assume!(t > 0 || f > 0);
        let thresholds = Thresholds::new(threshold);
        let forward = thresholds.classify(&trackersift::Counts { tracking: t, functional: f }).unwrap();
        let swapped = thresholds.classify(&trackersift::Counts { tracking: f, functional: t }).unwrap();
        let expected = match forward {
            Classification::Tracking => Classification::Functional,
            Classification::Functional => Classification::Tracking,
            Classification::Mixed => Classification::Mixed,
        };
        prop_assert_eq!(swapped, expected);
    }

    #[test]
    fn mixed_iff_ratio_within_band(t in 1u64..100_000, f in 1u64..100_000, threshold in 0.5f64..4.0) {
        let thresholds = Thresholds::new(threshold);
        let counts = trackersift::Counts { tracking: t, functional: f };
        let ratio = (t as f64 / f as f64).log10();
        let class = thresholds.classify(&counts).unwrap();
        if ratio.abs() < threshold - 1e-9 {
            prop_assert_eq!(class, Classification::Mixed);
        } else if ratio >= threshold {
            prop_assert_eq!(class, Classification::Tracking);
        } else if ratio <= -threshold {
            prop_assert_eq!(class, Classification::Functional);
        }
    }
}

// ---------------------------------------------------------------------------
// hierarchy + crawl: conservation and determinism on random small corpora.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hierarchy_conserves_requests_for_random_corpora(seed in 0u64..1_000, sites in 20usize..60) {
        let study = Study::run(StudyConfig {
            profile: CorpusProfile::small().with_sites(sites),
            seed,
            ..StudyConfig::default()
        });
        let h = &study.hierarchy;
        let attributed: u64 = h
            .levels
            .iter()
            .map(|l| l.request_counts.tracking + l.request_counts.functional)
            .sum();
        prop_assert_eq!(attributed + h.unattributed_requests, h.total_requests);
        for window in h.levels.windows(2) {
            prop_assert_eq!(window[1].input_requests, window[0].request_counts.mixed);
        }
        // Resource totals per level are consistent with their request totals.
        for level in &h.levels {
            let sum: u64 = level.resources.iter().map(|r| r.counts.total()).sum();
            prop_assert_eq!(sum, level.request_counts.total());
        }
    }

    #[test]
    fn crawl_database_round_trips_for_random_corpora(seed in 0u64..1_000, sites in 5usize..25) {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(sites), seed);
        let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
        let json = db.to_json().unwrap();
        let back = CrawlDatabase::from_json(&json).unwrap();
        prop_assert_eq!(db, back);
    }

    #[test]
    fn parallel_and_sequential_crawls_agree(seed in 0u64..500, sites in 10usize..40) {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(sites), seed);
        let sequential = CrawlCluster::new(ClusterConfig::sequential()).crawl(&corpus);
        let parallel = CrawlCluster::new(ClusterConfig::default().with_workers(6)).crawl(&corpus);
        prop_assert_eq!(sequential, parallel);
    }
}

// ---------------------------------------------------------------------------
// service: interleaved observe()/commit() ≡ from-scratch classification.
// ---------------------------------------------------------------------------

/// A synthetic labeled request drawn from small key pools, so random
/// streams collide enough to produce tracking, functional *and* mixed
/// resources at every granularity. The registrable domain is derived from
/// the hostname, exactly as the labeling stage derives it.
fn arb_observation() -> impl Strategy<Value = trackersift::LabeledRequest> {
    ((0usize..5, 0usize..3), (0usize..5, 0usize..4, 0u64..2)).prop_map(
        |((domain, host), (script, method, label))| {
            let hostname = format!("h{host}.d{domain}.com");
            let script = format!("https://pub.com/s{script}.js");
            let method = format!("m{method}");
            let tracking = label == 1;
            trackersift::LabeledRequest {
                request_id: 0,
                top_level_url: "https://www.pub.com/".into(),
                site_domain: "pub.com".into(),
                url: format!("https://{hostname}/x"),
                domain: format!("d{domain}.com"),
                hostname,
                resource_type: ResourceType::Xhr,
                initiator_script: script.clone(),
                initiator_method: method.clone(),
                stack: vec![trackersift::LabeledFrame {
                    script_url: script,
                    method,
                }],
                async_boundary: None,
                label: if tracking {
                    RequestLabel::Tracking
                } else {
                    RequestLabel::Functional
                },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleaved_observe_commit_equals_scratch_classification(
        observations in prop::collection::vec(arb_observation(), 1..150),
        commit_every in 1usize..12,
        threshold in 0.5f64..3.0,
    ) {
        let thresholds = Thresholds::new(threshold);
        let classifier = HierarchicalClassifier::new(thresholds);
        let mut sifter = Sifter::builder().thresholds(thresholds).build();

        for (i, request) in observations.iter().enumerate() {
            sifter.observe(request);
            if (i + 1) % commit_every == 0 {
                sifter.commit();
                // Every intermediate committed state equals classifying the
                // prefix from scratch — not just the final one.
                let scratch = classifier.classify(&observations[..=i]);
                prop_assert_eq!(sifter.hierarchy(), scratch);
            }
        }
        sifter.commit();
        let scratch = classifier.classify(&observations);
        prop_assert_eq!(&sifter.hierarchy(), &scratch);

        // Verdicts agree with the hierarchy's residue accounting: the
        // mixed-at-method verdicts cover exactly the unattributed requests.
        let mut residue = 0u64;
        for request in &observations {
            let verdict = sifter.verdict(&VerdictRequest::from_labeled(request));
            prop_assert!(verdict.classification().is_some());
            if verdict
                == (Verdict::Decided {
                    classification: Classification::Mixed,
                    granularity: Granularity::Method,
                })
            {
                residue += 1;
            }
        }
        prop_assert_eq!(residue, scratch.unattributed_requests);
    }

    #[test]
    fn snapshot_round_trip_is_lossless_for_random_streams(
        observations in prop::collection::vec(arb_observation(), 1..100),
    ) {
        let mut sifter = Sifter::builder().build();
        sifter.observe_all(&observations);
        sifter.commit();
        let snapshot = sifter.snapshot();
        let text = snapshot.to_json_string();
        let parsed = SifterSnapshot::parse(&text).unwrap();
        let restored = Sifter::builder().restore(&parsed).unwrap();
        prop_assert_eq!(restored.hierarchy(), sifter.hierarchy());
        prop_assert_eq!(restored.snapshot().to_json_string(), text);
    }
}
