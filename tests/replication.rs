//! Property-based tests for the sharded writers and the delta-snapshot
//! replication protocol (PR 10):
//!
//! * a [`ShardedReader`] answers **byte-identically** to the single-writer
//!   sifter after any interleaving of observations and commits, as long as
//!   the workload respects the partition invariant (scripts scoped to
//!   their domain);
//! * a follower that bootstraps from a full snapshot and then replays
//!   deltas reproduces the primary's [`VerdictTable`] at **every**
//!   advertised version — including across a primary restart (the
//!   durability journal re-seeds the revision ring) and across ring-aged
//!   spans, where the protocol's answer is a full re-bootstrap (the HTTP
//!   `410 Gone` contract).

use proptest::prelude::*;
use trackersift_suite::prelude::*;
use trackersift_suite::trackersift::{frames, ApplyError};

/// One synthetic observation, index-encoded so the strategies stay tiny.
/// The script URL is derived from the domain — the partition invariant
/// under which sharded answers are exact, not approximate.
type Obs = (u8, u8, u8, u8, u8);

fn parts(observation: Obs) -> (String, String, String, String, bool) {
    let (domain, hostname, script, method, tracking) = observation;
    let domain_name = format!("site{}.com", domain % 12);
    (
        domain_name.clone(),
        format!("h{}.{domain_name}", hostname % 2),
        format!("https://{domain_name}/s{}.js", script % 3),
        format!("m{}", method % 4),
        tracking == 1,
    )
}

/// A workload: epochs of observations, each epoch ending in one commit.
fn arb_epochs() -> impl Strategy<Value = Vec<Vec<Obs>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..12, 0u8..2, 0u8..3, 0u8..4, 0u8..2), 1..32),
        1..6,
    )
}

/// Every distinct (domain, hostname, script, method) tuple in a workload,
/// as owned strings — the probe set for byte-identity checks.
fn probes(epochs: &[Vec<Obs>]) -> Vec<(String, String, String, String)> {
    let mut seen = std::collections::BTreeSet::new();
    for epoch in epochs {
        for &observation in epoch {
            let (domain, hostname, script, method, _) = parts(observation);
            seen.insert((domain, hostname, script, method));
        }
    }
    seen.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole invariant: for domain-scoped workloads the sharded façade
    /// is indistinguishable from the single writer — same `Decision`, same
    /// `Verdict`, same rendered wire bytes — after interleaved commits.
    #[test]
    fn sharded_reader_is_byte_identical_to_the_single_writer(
        epochs in arb_epochs(),
        shards in 1usize..5,
    ) {
        let mut single = Sifter::builder().build();
        let mut sharded = ShardedWriter::build(shards, |_| Sifter::builder().build());
        for epoch in &epochs {
            for &observation in epoch {
                let (domain, hostname, script, method, tracking) = parts(observation);
                single.observe_parts(&domain, &hostname, &script, &method, tracking);
                sharded.observe_parts(&domain, &hostname, &script, &method, tracking);
            }
            single.commit();
            sharded.commit();
        }
        prop_assert_eq!(sharded.cross_partition_scripts(), 0);
        let reader = sharded.reader();
        let requests = probes(&epochs);
        let batch: Vec<DecisionRequest<'_>> = requests
            .iter()
            .map(|(d, h, s, m)| DecisionRequest::new(d, h, s, m))
            .collect();
        let decisions = reader.decide_batch(&batch);
        for (request, sharded_decision) in batch.iter().zip(&decisions) {
            let single_decision = single.decide(request);
            prop_assert_eq!(&single_decision, sharded_decision, "{:?}", request);
            // Byte identity, not just enum equality: the rendered wire
            // payloads agree too.
            prop_assert_eq!(
                frames::decision_value(&single_decision).render(),
                frames::decision_value(sharded_decision).render()
            );
            let verdict_request = VerdictRequest::new(
                request.domain,
                request.hostname,
                request.script,
                request.method,
            );
            prop_assert_eq!(
                single.verdict(&verdict_request),
                reader.verdict(&verdict_request)
            );
        }
    }
}

/// Assert the follower's table reproduces the primary's current table:
/// same version, same committed count, and byte-identical rendered
/// decisions over the whole probe set.
fn assert_tables_agree(
    primary: &VerdictTable,
    follower: &VerdictTable,
    requests: &[(String, String, String, String)],
) {
    assert_eq!(primary.version(), follower.version());
    assert_eq!(primary.committed(), follower.committed());
    for (domain, hostname, script, method) in requests {
        let request = DecisionRequest::new(domain, hostname, script, method);
        let ours = follower.decide(&request);
        let theirs = primary.decide(&request);
        assert_eq!(
            theirs,
            ours,
            "at version {}: {:?}",
            primary.version(),
            request
        );
        assert_eq!(
            frames::decision_value(&theirs).render(),
            frames::decision_value(&ours).render()
        );
    }
}

/// One follower sync against the primary's published table: try the delta
/// first; a ring-aged span (the server's `410 Gone`) falls back to the
/// full snapshot exactly like `ReplicaClient`. Every envelope round-trips
/// through the binary codec, so the test covers the wire encoding too.
/// Returns `true` when the sync was a full re-bootstrap.
fn sync_follower(follower: &mut FollowerState, primary: &VerdictTable) -> Result<bool, ApplyError> {
    let (snapshot, full) = match primary.delta_since(follower.version()) {
        Ok(delta) => (delta, false),
        Err(_) => (primary.full_snapshot_delta(), true),
    };
    let bytes = frames::encode_delta_snapshot(&snapshot);
    let decoded = frames::decode_delta_snapshot(&bytes).expect("binary codec round-trip");
    follower.apply(&decoded)?;
    Ok(full)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!(
        "trackersift-replication-{tag}-{}-{nanos}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: bootstrap + delta replay reproduces the
    /// primary's table at every advertised version, for any workload, any
    /// sync cadence (skipped epochs produce multi-commit deltas), any
    /// restart point (the journal re-seeds the ring across the restart),
    /// and any ring capacity (aged-out spans re-bootstrap via the full
    /// snapshot and still land exactly).
    #[test]
    fn replica_reproduces_every_advertised_version(
        epochs in arb_epochs(),
        syncs in prop::collection::vec(0u8..2, 5..6),
        restart_after in 0usize..5,
        ring_capacity in 1usize..5,
    ) {
        let dir = temp_dir("proptest");
        let requests = probes(&epochs);
        let (mut writer, mut reader) = Sifter::builder().build_concurrent();
        writer.set_revision_capacity(ring_capacity);
        writer.open_durable(&dir, 1).expect("open durable");

        let mut follower = FollowerState::new(None, None);
        let mut full_syncs = 0usize;
        {
            let pin = reader.pin();
            let full = sync_follower(&mut follower, pin.table()).expect("bootstrap");
            prop_assert!(full, "an empty-ring primary always serves a full snapshot");
            full_syncs += 1;
            assert_tables_agree(pin.table(), &follower.table(), &requests);
        }

        for (index, epoch) in epochs.iter().enumerate() {
            for &observation in epoch {
                let (domain, hostname, script, method, tracking) = parts(observation);
                writer.observe_parts(&domain, &hostname, &script, &method, tracking);
            }
            writer.commit();

            if index == restart_after {
                // Primary restart: drop the writer, recover a fresh one
                // from the durable dir. Versions stay continuous and the
                // journal's persisted revision records re-seed the ring,
                // so a follower inside the retained span keeps syncing
                // with deltas as if nothing happened.
                let version_before = reader.pin().table().version();
                drop(writer);
                drop(reader);
                let pair = Sifter::builder().build_concurrent();
                writer = pair.0;
                reader = pair.1;
                writer.set_revision_capacity(ring_capacity);
                writer.open_durable(&dir, 1).expect("recover durable");
                prop_assert_eq!(
                    reader.pin().table().version(),
                    version_before,
                    "recovery rebased onto the journal's version numbering"
                );
            }

            // The follower only polls on some epochs — skipped epochs make
            // the next delta span several commits, and with a small ring
            // capacity, spans that aged out of the ring.
            if syncs[index % syncs.len()] == 1 || index + 1 == epochs.len() {
                let pin = reader.pin();
                if sync_follower(&mut follower, pin.table()).expect("sync") {
                    full_syncs += 1;
                }
                assert_tables_agree(pin.table(), &follower.table(), &requests);
            }
        }

        // The follower ends byte-identical to the primary's final table.
        let pin = reader.pin();
        prop_assert_eq!(follower.version(), pin.table().version());
        prop_assert!(full_syncs >= 1);
        drop(pin);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The ring-aged contract, deterministically: a follower that sleeps
/// through more commits than the ring retains cannot be served a delta —
/// `delta_since` refuses, the full snapshot re-bootstraps it (epoch bump
/// and all), and the result is still exact.
#[test]
fn aged_out_follower_rebootstraps_from_the_full_snapshot() {
    let (mut writer, reader) = Sifter::builder().build_concurrent();
    writer.set_revision_capacity(2);
    writer.observe_parts(
        "ads.com",
        "px.ads.com",
        "https://ads.com/a.js",
        "send",
        true,
    );
    writer.commit();

    let mut follower = FollowerState::new(None, None);
    follower
        .apply(&reader.pin().table().full_snapshot_delta())
        .expect("bootstrap");
    assert_eq!(follower.version(), 1);

    // Five more commits against a capacity-2 ring: version 1 ages out.
    for n in 0..5 {
        let domain = format!("d{n}.com");
        writer.observe_parts(
            &domain,
            &format!("h.{domain}"),
            &format!("https://{domain}/s.js"),
            "send",
            n % 2 == 0,
        );
        writer.commit();
    }
    let pin = reader.pin();
    assert!(
        pin.table().delta_since(follower.version()).is_err(),
        "a span older than the ring must refuse the delta"
    );
    let bootstraps_before = follower.bootstraps();
    follower
        .apply(&pin.table().full_snapshot_delta())
        .expect("full re-bootstrap");
    assert_eq!(follower.bootstraps(), bootstraps_before + 1);
    assert_eq!(follower.version(), pin.table().version());
    let request = DecisionRequest::new("d4.com", "h.d4.com", "https://d4.com/s.js", "send");
    assert_eq!(
        follower.table().decide(&request),
        pin.table().decide(&request)
    );
}
