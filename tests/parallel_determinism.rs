//! Determinism of the parallel execution engine: a study run on many worker
//! threads must be indistinguishable from a single-threaded run — same crawl
//! database, same crawl summary, same labels, same hierarchy. This is the
//! property that makes the `workers` knob safe to turn all the way up.

use trackersift_suite::prelude::*;

fn study(workers: usize) -> Study {
    Study::run(
        StudyConfig::small()
            .with_sites(80)
            .with_seed(99)
            .with_threads(workers),
    )
}

#[test]
fn parallel_study_matches_single_threaded_study() {
    let sequential = study(1);
    let parallel = study(8);

    // The crawl summary is identical modulo the recorded worker count.
    let mut normalized = parallel.crawl_summary.clone();
    normalized.workers = sequential.crawl_summary.workers;
    assert_eq!(normalized, sequential.crawl_summary);

    assert_eq!(parallel.database, sequential.database);
    assert_eq!(parallel.requests, sequential.requests);
    assert_eq!(parallel.label_stats, sequential.label_stats);
    assert_eq!(parallel.hierarchy, sequential.hierarchy);
}

#[test]
fn parallel_labeling_matches_sequential_labeling() {
    let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(60), 7);
    let db = CrawlCluster::new(ClusterConfig::sequential()).crawl(&corpus);
    let engine = websim::filter_rules::engine_for(&corpus.ecosystem);
    let labeler = Labeler::new(&engine);

    let (sequential_requests, sequential_stats) = labeler.label_database(&db);
    for workers in [2, 4, 8] {
        let (parallel_requests, parallel_stats) = labeler.label_database_parallel(&db, workers);
        assert_eq!(parallel_requests, sequential_requests, "{workers} workers");
        assert_eq!(parallel_stats, sequential_stats, "{workers} workers");
    }
}

#[test]
fn worker_count_does_not_leak_into_analyses() {
    let sequential = study(1);
    let parallel = study(6);
    assert_eq!(
        parallel.callstack_analysis(),
        sequential.callstack_analysis()
    );
    assert_eq!(parallel.surrogates(), sequential.surrogates());
    assert_eq!(
        parallel.flat_classification(Granularity::Method),
        sequential.flat_classification(Granularity::Method)
    );
}
